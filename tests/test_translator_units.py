"""Unit tests for the translator pipeline stages."""

from __future__ import annotations

import pytest

from repro.host.atoms import AtomKind
from repro.interp.profile import ExecutionProfile
from repro.machine import Machine
from repro.translator.codegen import CodeGenerator
from repro.translator.frontend import Frontend
from repro.translator.ir import GuestFlag, GuestReg, IROpKind, is_guest_loc
from repro.translator.optimize import optimize
from repro.translator.policies import TranslationPolicy
from repro.translator.region import Region, RegionEnd, RegionSelector
from repro.translator.schedule import Scheduler
from repro.translator.translator import Translator


def build_machine(source: str) -> tuple[Machine, int]:
    machine = Machine()
    entry = machine.load_source(source)
    return machine, entry


def select(source: str, policy: TranslationPolicy | None = None,
           profile: ExecutionProfile | None = None) -> Region:
    machine, entry = build_machine(source)
    selector = RegionSelector(machine, profile or ExecutionProfile())
    region = selector.select(entry, policy or TranslationPolicy())
    assert region is not None
    return region


def lower(source: str, policy: TranslationPolicy | None = None):
    policy = policy or TranslationPolicy()
    region = select(source, policy)
    trace = Frontend(policy).lower(region)
    return region, trace


class TestRegionSelection:
    def test_straight_line_ends_at_hlt(self):
        region = select("start: mov eax, 1\nadd eax, 2\ncli\nhlt\n")
        assert len(region.instrs) == 2
        assert region.end is RegionEnd.CONT

    def test_loop_detected(self):
        region = select("""
        start:
            inc eax
            cmp eax, 10
            jne start
            cli
            hlt
        """)
        assert region.end is RegionEnd.LOOP

    def test_loop_by_fallthrough_into_entry(self):
        region = select("""
        start:
            inc eax
            jmp mid
        mid:
            cmp eax, 10
            jne start
            cli
            hlt
        """)
        # Taking the backward branch reaches the entry: loop region.
        assert region.end is RegionEnd.LOOP

    def test_follows_unconditional_jumps(self):
        region = select("""
        start:
            mov eax, 1
            jmp away
        between:
            .space 64
        away:
            mov ebx, 2
            cli
            hlt
        """)
        assert len(region.instrs) == 3  # mov, jmp, mov
        addrs = sorted(region.addresses)
        assert addrs[-1] > addrs[0] + 64  # crossed the gap

    def test_follows_direct_calls(self):
        region = select("""
        start:
            mov esp, 0x8000
            call fn
            cli
            hlt
        fn:
            mov eax, 1
            ret
        """)
        # mov esp, call, mov eax — then ret ends it as INDIRECT.
        assert region.end is RegionEnd.INDIRECT
        assert len(region.instrs) == 4

    def test_stops_at_interp_only(self):
        region = select("start: mov eax, 1\nsti\nmov ebx, 2\ncli\nhlt\n")
        assert len(region.instrs) == 1
        assert region.end is RegionEnd.CONT

    def test_stop_addrs_respected(self):
        machine, entry = build_machine(
            "start: mov eax, 1\nadd eax, 2\nmov ebx, 3\ncli\nhlt\n")
        selector = RegionSelector(machine, ExecutionProfile())
        # Stop at the second instruction (entry + 6).
        policy = TranslationPolicy(stop_addrs=frozenset({entry + 6}))
        region = selector.select(entry, policy)
        assert len(region.instrs) == 1

    def test_max_instructions_cap(self):
        source = "start:\n" + "    inc eax\n" * 50 + "    cli\n    hlt\n"
        policy = TranslationPolicy(max_instructions=10)
        region = select(source, policy)
        assert len(region.instrs) == 10

    def test_branch_bias_steers_trace(self):
        source = """
        start:
            cmp eax, 5
            je taken_path
            mov ebx, 1
            cli
            hlt
        taken_path:
            mov ecx, 2
            cli
            hlt
        """
        machine, entry = build_machine(source)
        profile = ExecutionProfile()
        # Mark the branch as strongly taken.
        branch_addr = entry + 6
        for _ in range(10):
            profile.on_branch(branch_addr, taken=True)
        selector = RegionSelector(machine, profile)
        region = selector.select(entry, TranslationPolicy())
        assert region.follow_taken[branch_addr] is True
        # The trace contains the taken-path mov ecx.
        mnemonics = [i.info.mnemonic for i in region.instrs]
        assert mnemonics == ["cmp", "je", "mov"]

    def test_code_ranges_merge_contiguous(self):
        region = select("start: mov eax, 1\nadd eax, 2\ncli\nhlt\n")
        ranges = region.code_ranges()
        assert len(ranges) == 1
        assert ranges[0][1] == 12  # two 6-byte instructions


class TestFrontend:
    def test_flags_fully_materialized_before_optimization(self):
        _, trace = lower("start: add eax, 1\ncli\nhlt\n")
        flag_writes = [
            op for op in trace.ops
            if op.kind is IROpKind.MOV and isinstance(op.dest, GuestFlag)
        ]
        # add defines CF, PF, ZF, SF, OF.
        assert len(flag_writes) == 5

    def test_commit_every_interval(self):
        source = "start:\n" + "    inc eax\n" * 30 + "    cli\n    hlt\n"
        policy = TranslationPolicy(commit_interval=8)
        _, trace = lower(source, policy)
        commits = [op for op in trace.ops if op.kind is IROpKind.COMMIT]
        assert len(commits) == 3  # after 8, 16, 24 of 30 instructions

    def test_io_instruction_is_barrier_with_commit(self):
        _, trace = lower("start: mov eax, 65\nout 0xE9\nmov ebx, 1\ncli\nhlt\n")
        kinds = [op.kind for op in trace.ops]
        out_index = kinds.index(IROpKind.PORT_OUT)
        assert IROpKind.COMMIT in kinds[out_index:]

    def test_windows_cover_all_instructions(self):
        source = "start:\n" + "    inc eax\n" * 20 + "    cli\n    hlt\n"
        policy = TranslationPolicy(commit_interval=6)
        region, trace = lower(source, policy)
        covered = set()
        for op in trace.ops:
            if op.kind in (IROpKind.COMMIT, IROpKind.EXIT, IROpKind.LOOP,
                           IROpKind.EXIT_IND):
                covered.update(range(op.window_start, op.window_end))
        assert covered == set(range(len(region.instrs)))

    def test_stylized_immediate_reloaded(self):
        machine, entry = build_machine("start: mov eax, 0x1234\ncli\nhlt\n")
        policy = TranslationPolicy(stylized_imm_addrs=frozenset({entry}))
        selector = RegionSelector(machine, ExecutionProfile())
        region = selector.select(entry, policy)
        trace = Frontend(policy).lower(region)
        loads = [op for op in trace.ops if op.kind is IROpKind.LD]
        assert loads, "stylized immediate must become a runtime load"

    def test_cl_shift_uses_selects(self):
        _, trace = lower("start: mov ecx, 3\nshl eax, cl\ncli\nhlt\n")
        sels = [op for op in trace.ops if op.kind is IROpKind.SEL]
        assert sels  # flag writes guarded on count==0


class TestOptimizer:
    def test_dead_flags_eliminated(self):
        # Three adds in a row: only the last one's flags can survive to
        # the exit; the first two's flag recipes must die.
        _, trace = lower("""
        start:
            add eax, 1
            add eax, 2
            add eax, 3
            cli
            hlt
        """)
        before = len([
            op for op in trace.ops
            if op.kind is IROpKind.MOV and isinstance(op.dest, GuestFlag)
        ])
        optimize(trace)
        after = len([
            op for op in trace.ops
            if op.kind is IROpKind.MOV and isinstance(op.dest, GuestFlag)
        ])
        assert before == 15
        assert after == 5  # only the final add's five flags remain

    def test_constant_folding_collapses(self):
        _, trace = lower("""
        start:
            mov eax, 10
            add eax, 20
            cli
            hlt
        """)
        optimize(trace)
        # eax's final writeback source must be a folded constant 30.
        movis = [op for op in trace.ops if op.kind is IROpKind.MOVI]
        assert any(op.imm == 30 for op in movis)
        alus = [op for op in trace.ops if op.kind is IROpKind.ALU]
        assert not alus  # everything folded

    def test_redundant_load_eliminated(self):
        _, trace = lower("""
        start:
            load eax, [ebx+4]
            load ecx, [ebx+4]
            cli
            hlt
        """)
        optimize(trace)
        loads = [op for op in trace.ops if op.kind is IROpKind.LD]
        assert len(loads) == 1

    def test_store_to_load_forwarding(self):
        # The stored value is a computed temp, so the later load of the
        # same address is forwarded away entirely.
        _, trace = lower("""
        start:
            add eax, 1
            store [ebx+8], eax
            load ecx, [ebx+8]
            cli
            hlt
        """)
        optimize(trace)
        loads = [op for op in trace.ops if op.kind is IROpKind.LD]
        assert not loads  # forwarded from the store

    def test_store_of_guest_loc_not_forwarded(self):
        # A raw guest-register value is not substituted forward (the
        # register may be redefined before the load); the load stays.
        _, trace = lower("""
        start:
            store [ebx+8], eax
            mov eax, 5
            load ecx, [ebx+8]
            cli
            hlt
        """)
        optimize(trace)
        loads = [op for op in trace.ops if op.kind is IROpKind.LD]
        assert len(loads) == 1

    def test_may_alias_store_blocks_forwarding(self):
        _, trace = lower("""
        start:
            load eax, [ebx+4]
            store [edx+4], ecx   ; unknown base: may alias
            load esi, [ebx+4]
            cli
            hlt
        """)
        optimize(trace)
        loads = [op for op in trace.ops if op.kind is IROpKind.LD]
        assert len(loads) == 2

    def test_loads_never_deleted_even_if_dead(self):
        _, trace = lower("""
        start:
            load eax, [ebx]    ; result overwritten: dead, but may fault
            mov eax, 5
            cli
            hlt
        """)
        optimize(trace)
        loads = [op for op in trace.ops if op.kind is IROpKind.LD]
        assert len(loads) == 1

    def test_never_taken_constant_exit_removed(self):
        # xor eax,eax ; jnz: ZF is constant-known? (not folded — flags
        # come from ALU ops, not constants across guest regs); this test
        # pins that EXIT_IF survives when the condition is dynamic.
        _, trace = lower("""
        start:
            xor eax, eax
            jnz start
            cli
            hlt
        """)
        optimize(trace)
        exits = [op for op in trace.ops if op.kind is IROpKind.EXIT_IF]
        assert len(exits) <= 1


class TestScheduler:
    def _schedule(self, source, policy=None):
        policy = policy or TranslationPolicy()
        region, trace = lower(source, policy)
        optimize(trace)
        scheduler = Scheduler(policy)
        schedule = scheduler.schedule(trace)
        return trace, schedule

    def test_stores_stay_in_program_order(self):
        _, schedule = self._schedule("""
        start:
            store [ebx], eax
            store [ebx+4], ecx
            store [edx], esi
            cli
            hlt
        """)
        positions = {}
        for cycle_index, cycle in enumerate(schedule.cycles):
            for op in cycle:
                if op.kind is IROpKind.ST:
                    positions[op.guest_index] = cycle_index
        ordered = [positions[g] for g in sorted(positions)]
        assert ordered == sorted(ordered)

    def test_load_hoisted_above_store_gets_alias_protection(self):
        # Store through edx, later load through ebx: not provably
        # disjoint, so hoisting requires alias machinery.
        _, schedule = self._schedule("""
        start:
            store [edx], eax
            load ecx, [ebx+4]
            add ecx, 1
            cli
            hlt
        """)
        if schedule.speculated_loads:
            # find the marked ops
            all_ops = [op for cycle in schedule.cycles for op in cycle]
            loads = [op for op in all_ops if op.kind is IROpKind.LD]
            stores = [op for op in all_ops if op.kind is IROpKind.ST]
            assert any(op.reordered and op.alias_entry is not None
                       for op in loads)
            assert any(op.alias_check for op in stores)

    def test_no_reorder_policy_blocks_speculation(self):
        policy = TranslationPolicy(reorder_memory=False,
                                   control_speculation=False)
        _, schedule = self._schedule("""
        start:
            store [edx], eax
            load ecx, [ebx+4]
            cmp ecx, 0
            jne start
            load esi, [ebx+8]
            cli
            hlt
        """, policy)
        assert schedule.speculated_loads == 0
        assert schedule.hoisted_over_exits == 0
        all_ops = [op for cycle in schedule.cycles for op in cycle]
        assert not any(op.reordered for op in all_ops)

    def test_provably_disjoint_needs_no_alias_hw(self):
        policy = TranslationPolicy(use_alias_hw=False)
        _, schedule = self._schedule("""
        start:
            store [ebx], eax
            load ecx, [ebx+8]   ; same base, disjoint displacement
            add ecx, 1
            cli
            hlt
        """, policy)
        all_ops = [op for cycle in schedule.cycles for op in cycle]
        loads = [op for op in all_ops if op.kind is IROpKind.LD]
        assert loads  # still present, maybe hoisted, never protected
        assert all(op.alias_entry is None for op in loads)

    def test_guest_writebacks_do_not_cross_exits(self):
        _, schedule = self._schedule("""
        start:
            add eax, 1
            jz out_exit
            mov ebx, 7
            cli
            hlt
        out_exit:
            cli
            hlt
        """)
        all_positions = []
        exit_cycle = None
        writeback_after_exit_cycle = None
        for cycle_index, cycle in enumerate(schedule.cycles):
            for op in cycle:
                if op.kind is IROpKind.EXIT_IF:
                    exit_cycle = cycle_index
                if (op.kind is IROpKind.MOV and
                        isinstance(op.dest, GuestReg) and
                        op.dest.index == 3):  # ebx writeback
                    writeback_after_exit_cycle = cycle_index
        assert exit_cycle is not None
        assert writeback_after_exit_cycle is not None
        assert writeback_after_exit_cycle > exit_cycle

    def test_barrier_ops_schedule_alone(self):
        _, schedule = self._schedule("""
        start:
            mov eax, 65
            out 0xE9
            mov ebx, 1
            cli
            hlt
        """)
        for cycle in schedule.cycles:
            if any(op.kind is IROpKind.PORT_OUT for op in cycle):
                assert len(cycle) == 1

    def test_empty_cycles_exist_for_latency(self):
        # A load feeding an add must leave a latency gap (LD latency 2).
        _, schedule = self._schedule("""
        start:
            load eax, [ebx]
            add eax, 1
            cli
            hlt
        """)
        load_cycle = use_cycle = None
        for index, cycle in enumerate(schedule.cycles):
            for op in cycle:
                if op.kind is IROpKind.LD:
                    load_cycle = index
                if op.kind is IROpKind.ALU and load_cycle is not None \
                        and use_cycle is None:
                    use_cycle = index
        assert use_cycle - load_cycle >= 2


class TestCodegenAndPipeline:
    def _translate(self, source, policy=None, threshold_profile=True):
        machine = Machine()
        entry = machine.load_source(source)
        profile = ExecutionProfile()
        translator = Translator(machine, profile)
        return translator.translate(entry, policy or TranslationPolicy())

    def test_translation_structure(self):
        translation = self._translate("""
        start:
            mov eax, 1
            add eax, 2
            cli
            hlt
        """)
        assert translation.entry_label == "body"
        assert "body" in translation.labels
        assert translation.exit_atoms
        assert translation.guest_instr_count == 2
        # Every exit is preceded by a commit.
        kinds = [atom.kind for mol in translation.molecules
                 for atom in mol.atoms]
        assert AtomKind.COMMIT in kinds
        assert AtomKind.EXIT in kinds

    def test_loop_region_has_backedge(self):
        translation = self._translate("""
        start:
            inc eax
            cmp eax, 100
            jne start
            cli
            hlt
        """)
        kinds = [atom.kind for mol in translation.molecules
                 for atom in mol.atoms]
        assert AtomKind.BR in kinds  # the internal back-edge

    def test_self_check_emits_window_checks(self):
        plain = self._translate("""
        start:
            inc eax
            cmp eax, 100
            jne start
            cli
            hlt
        """)
        checked = self._translate("""
        start:
            inc eax
            cmp eax, 100
            jne start
            cli
            hlt
        """, TranslationPolicy(self_check=True))
        assert checked.num_molecules > plain.num_molecules
        assert "smc_fail" in checked.labels
        fail_atoms = [atom for mol in checked.molecules
                      for atom in mol.atoms
                      if atom.kind is AtomKind.FAIL]
        assert fail_atoms

    def test_self_check_code_size_overhead_band(self):
        # §3.6.3: self-checking adds a mean of 83% to the code size
        # (58%..100%).  Verify a straight-line region lands in a broad
        # band around that.
        source = "start:\n" + "    add eax, 3\n    xor ebx, eax\n" * 10 \
            + "    cli\n    hlt\n"
        plain = self._translate(source)
        checked = self._translate(source, TranslationPolicy(self_check=True))
        overhead = (checked.num_molecules - plain.num_molecules) \
            / plain.num_molecules
        assert 0.2 < overhead < 2.5

    def test_prologue_structure(self):
        translation = self._translate("""
        start:
            inc eax
            cmp eax, 100
            jne start
            cli
            hlt
        """, TranslationPolicy(self_revalidate=True))
        assert translation.prologue_label == "prologue"
        assert translation.entry_label == "body"
        prologue_index = translation.labels["prologue"]
        body_index = translation.labels["body"]
        assert prologue_index < body_index
        # The prologue ends with a prologue_success exit.
        success_exits = [
            atom for mol in translation.molecules for atom in mol.atoms
            if atom.kind is AtomKind.EXIT and atom.prologue_success
        ]
        assert len(success_exits) == 1

    def test_mmio_learned_sites_are_fenced(self):
        machine = Machine()
        entry = machine.load_source("""
        start:
            load eax, [ebx]
            cli
            hlt
        """)
        profile = ExecutionProfile()
        profile.on_mmio(entry)  # profile observed MMIO at the load
        translator = Translator(machine, profile)
        translation = translator.translate(entry, TranslationPolicy())
        load_atoms = [atom for mol in translation.molecules
                      for atom in mol.atoms if atom.kind is AtomKind.LD]
        assert any(atom.io_ok for atom in load_atoms)

    def test_policy_merge_monotone(self):
        a = TranslationPolicy(reorder_memory=False)
        b = TranslationPolicy(max_instructions=50,
                              no_reorder_addrs=frozenset({0x10}))
        merged = a.merge(b)
        assert not merged.reorder_memory
        assert merged.max_instructions == 50
        assert 0x10 in merged.no_reorder_addrs
        # Merge is idempotent and commutative on these fields.
        assert merged.merge(merged) == merged
        assert a.merge(b) == b.merge(a)

    def test_fallback_on_huge_region(self):
        # A pathological straight line of 200 divisions (deep temp
        # pressure) must still translate via the fallback ladder.
        source = "start:\n" + "    mov edx, 0\n    or ecx, 1\n    div ecx\n" * 60 \
            + "    cli\n    hlt\n"
        translation = self._translate(source)
        assert translation is not None
