"""Unit tests for the adaptive retranslation controller."""

from __future__ import annotations

import pytest

from repro.cms.config import CMSConfig
from repro.cms.retranslation import MIN_REGION, AdaptiveController
from repro.host.faults import HostFault, HostFaultKind

from test_tcache import make_translation


def make_controller(**config_overrides) -> AdaptiveController:
    from dataclasses import replace

    config = replace(CMSConfig(), **config_overrides)
    return AdaptiveController(config)


def fault(kind: HostFaultKind, site: int = 0x1010) -> HostFault:
    return HostFault(kind=kind, guest_addr=site)


class TestBasePolicy:
    def test_base_reflects_config(self):
        controller = make_controller(reorder_memory=False,
                                     max_region_instructions=64)
        policy = controller.base_policy()
        assert not policy.reorder_memory
        assert policy.max_instructions == 64

    def test_force_self_check_propagates(self):
        controller = make_controller(force_self_check=True)
        assert controller.base_policy().self_check

    def test_policy_for_unknown_entry_is_base(self):
        controller = make_controller()
        assert controller.policy_for(0x9999) == controller.base_policy()


class TestEscalation:
    def test_below_threshold_no_action(self):
        controller = make_controller(fault_threshold=3)
        t = make_translation()
        for _ in range(2):
            assert controller.note_fault(
                t, fault(HostFaultKind.ALIAS_VIOLATION), None
            ) is None

    def test_alias_ladder(self):
        controller = make_controller(fault_threshold=1)
        t = make_translation()
        # Stage 1: pin the faulting site.
        policy = controller.note_fault(
            t, fault(HostFaultKind.ALIAS_VIOLATION, 0x1010), None)
        assert 0x1010 in policy.no_reorder_addrs
        assert policy.reorder_memory
        # Stage 2+: narrow the region.
        policy = controller.note_fault(
            t, fault(HostFaultKind.ALIAS_VIOLATION, 0x1010), None)
        assert policy.max_instructions < CMSConfig().max_region_instructions
        # Keep narrowing until the floor, then disable reordering.
        for _ in range(10):
            policy = controller.note_fault(
                t, fault(HostFaultKind.ALIAS_VIOLATION, 0x1010), None)
            if policy is None:
                break
        final = controller.policy_for(t.entry_eip)
        assert final.max_instructions == MIN_REGION
        assert not final.reorder_memory

    def test_spec_mmio_fences_site(self):
        controller = make_controller(fault_threshold=1)
        t = make_translation()
        policy = controller.note_fault(
            t, fault(HostFaultKind.SPEC_MMIO, 0x1020), None)
        assert 0x1020 in policy.io_fence_addrs

    def test_genuine_guest_fault_narrows_then_pins(self):
        controller = make_controller(fault_threshold=1)
        t = make_translation()
        policy = None
        for _ in range(12):
            new = controller.note_fault(
                t, fault(HostFaultKind.GUEST_FAULT, 0x1010), True)
            policy = new or policy
        assert policy.max_instructions == MIN_REGION
        assert 0x1010 in policy.stop_addrs

    def test_speculative_guest_fault_pins_load(self):
        controller = make_controller(fault_threshold=1)
        t = make_translation()
        policy = controller.note_fault(
            t, fault(HostFaultKind.GUEST_FAULT, 0x1010), False)
        assert 0x1010 in policy.no_reorder_addrs
        policy = controller.note_fault(
            t, fault(HostFaultKind.GUEST_FAULT, 0x1010), False)
        assert not policy.control_speculation

    def test_storebuf_overflow_shrinks_commit_interval(self):
        controller = make_controller(fault_threshold=1)
        t = make_translation()
        policy = controller.note_fault(
            t, fault(HostFaultKind.STOREBUF_OVERFLOW), None)
        assert policy.commit_interval < CMSConfig().commit_interval

    def test_protection_faults_not_handled_here(self):
        controller = make_controller(fault_threshold=1)
        t = make_translation()
        assert controller.note_fault(
            t, fault(HostFaultKind.PROTECTION), None) is None

    def test_disabled_adaptation_never_escalates(self):
        controller = make_controller(adaptive_retranslation=False,
                                     fault_threshold=1)
        t = make_translation()
        for _ in range(10):
            assert controller.note_fault(
                t, fault(HostFaultKind.ALIAS_VIOLATION), None) is None

    def test_counters_are_per_site(self):
        controller = make_controller(fault_threshold=2)
        t = make_translation()
        assert controller.note_fault(
            t, fault(HostFaultKind.ALIAS_VIOLATION, 0x1010), None) is None
        assert controller.note_fault(
            t, fault(HostFaultKind.ALIAS_VIOLATION, 0x1020), None) is None
        # Second fault at the first site crosses its own threshold.
        policy = controller.note_fault(
            t, fault(HostFaultKind.ALIAS_VIOLATION, 0x1010), None)
        assert policy is not None
        assert 0x1010 in policy.no_reorder_addrs
        assert 0x1020 not in policy.no_reorder_addrs


class TestAccumulation:
    def test_set_policy_merges(self):
        controller = make_controller()
        base = controller.policy_for(0x1000)
        controller.set_policy(0x1000, base.with_(self_check=True))
        controller.set_policy(
            0x1000, base.with_(no_reorder_addrs=frozenset({0x1010})))
        accumulated = controller.policy_for(0x1000)
        assert accumulated.self_check
        assert 0x1010 in accumulated.no_reorder_addrs

    def test_policies_monotone_under_escalation(self):
        controller = make_controller(fault_threshold=1)
        t = make_translation()
        seen = [controller.policy_for(t.entry_eip)]
        kinds = [HostFaultKind.ALIAS_VIOLATION, HostFaultKind.SPEC_MMIO,
                 HostFaultKind.STOREBUF_OVERFLOW]
        for i in range(9):
            controller.note_fault(
                t, fault(kinds[i % 3], 0x1010 + i), None)
            seen.append(controller.policy_for(t.entry_eip))
        for earlier, later in zip(seen, seen[1:]):
            merged = earlier.merge(later)
            assert merged == later, "escalation must only tighten"


class TestCodeIdentity:
    """PR 5: a region's accumulated policy is tied to a code identity;
    loading *different* code at the same address drops version-specific
    escalations (no stale stop/no-reorder pins against new code) while
    keeping the address's SMC shape."""

    def test_first_observation_only_records(self):
        controller = make_controller(fault_threshold=1)
        t = make_translation()
        controller.note_fault(
            t, fault(HostFaultKind.ALIAS_VIOLATION, 0x1010), None)
        controller.observe_code(t.entry_eip, "digest-a")
        assert controller.code_resets == 0
        assert 0x1010 in controller.policy_for(t.entry_eip).no_reorder_addrs

    def test_same_digest_is_a_noop(self):
        controller = make_controller(fault_threshold=1)
        t = make_translation()
        controller.observe_code(t.entry_eip, "digest-a")
        controller.note_fault(
            t, fault(HostFaultKind.ALIAS_VIOLATION, 0x1010), None)
        controller.observe_code(t.entry_eip, "digest-a")
        assert controller.code_resets == 0
        assert 0x1010 in controller.policy_for(t.entry_eip).no_reorder_addrs

    def test_new_identity_drops_version_specific_escalations(self):
        controller = make_controller(fault_threshold=1)
        t = make_translation()
        controller.observe_code(t.entry_eip, "digest-a")
        controller.note_fault(
            t, fault(HostFaultKind.ALIAS_VIOLATION, 0x1010), None)
        controller.note_fault(
            t, fault(HostFaultKind.SPEC_MMIO, 0x1020), None)
        controller.observe_code(t.entry_eip, "digest-b")
        assert controller.code_resets == 1
        assert controller.policy_for(t.entry_eip) == \
            controller.base_policy()
        # Per-site fault counters restarted with the new code too.
        assert controller.note_fault(
            t, fault(HostFaultKind.ALIAS_VIOLATION, 0x1010), None
        ) is not None  # threshold 1: first fault escalates again

    def test_new_identity_keeps_smc_shape(self):
        controller = make_controller(fault_threshold=1)
        t = make_translation()
        base = controller.base_policy()
        controller.observe_code(t.entry_eip, "digest-a")
        controller.set_policy(t.entry_eip, base.with_(
            self_check=True, self_revalidate=True,
            stylized_imm_addrs=frozenset({0x1014})))
        controller.note_fault(
            t, fault(HostFaultKind.ALIAS_VIOLATION, 0x1010), None)
        controller.observe_code(t.entry_eip, "digest-b")
        kept = controller.policy_for(t.entry_eip)
        assert kept.self_check and kept.self_revalidate
        assert 0x1014 in kept.stylized_imm_addrs
        assert not kept.no_reorder_addrs  # version-specific: dropped

    def test_monotone_within_one_identity(self):
        controller = make_controller(fault_threshold=1)
        t = make_translation()
        controller.observe_code(t.entry_eip, "digest-b")
        seen = [controller.policy_for(t.entry_eip)]
        for i in range(4):
            controller.note_fault(
                t, fault(HostFaultKind.ALIAS_VIOLATION, 0x1010 + i), None)
            controller.observe_code(t.entry_eip, "digest-b")
            seen.append(controller.policy_for(t.entry_eip))
        for earlier, later in zip(seen, seen[1:]):
            assert earlier.merge(later) == later


class TestPruneAndState:
    """PR 5: controller state is bounded by live regions, and survives
    a snapshot round trip via export/import with monotone merging."""

    def test_prune_drops_dead_keeps_live(self):
        controller = make_controller(fault_threshold=1)
        live = make_translation(entry=0x1000)
        dead = make_translation(entry=0x2000)
        for t in (live, dead):
            controller.observe_code(t.entry_eip, "digest")
            controller.note_fault(
                t, fault(HostFaultKind.ALIAS_VIOLATION, t.entry_eip + 0x10),
                None)
        removed = controller.prune({0x1000}, {0x1000})
        assert removed > 0
        assert controller.pruned == removed
        assert controller.policy_entries() == {0x1000}
        assert controller.site_fault_entries() <= {0x1000}
        assert controller.policy_for(0x2000) == controller.base_policy()
        assert 0x1010 in controller.policy_for(0x1000).no_reorder_addrs

    def test_prune_site_faults_more_aggressively(self):
        controller = make_controller(fault_threshold=3)
        t = make_translation(entry=0x3000)
        controller.note_fault(
            t, fault(HostFaultKind.ALIAS_VIOLATION, 0x3010), None)
        controller.set_policy(
            0x3000, controller.base_policy().with_(self_check=True))
        # Policy stays (entry in live_policy_entries, e.g. a hot
        # anchor); the partial fault count goes (not resident).
        controller.prune({0x3000}, set())
        assert 0x3000 in controller.policy_entries()
        assert controller.site_fault_entries() == set()

    def test_export_import_roundtrip(self):
        controller = make_controller(fault_threshold=2)
        t = make_translation(entry=0x1000)
        controller.observe_code(0x1000, "digest-a")
        controller.note_fault(
            t, fault(HostFaultKind.ALIAS_VIOLATION, 0x1010), None)
        controller.note_fault(
            t, fault(HostFaultKind.ALIAS_VIOLATION, 0x1010), None)
        state = controller.export_state()
        fresh = make_controller(fault_threshold=2)
        fresh.import_state(state)
        assert fresh.policy_for(0x1000) == controller.policy_for(0x1000)
        assert fresh._code_ids == controller._code_ids
        assert dict(fresh._site_faults) == {
            k: v for k, v in controller._site_faults.items() if v > 0}

    def test_import_merges_monotone(self):
        exporter = make_controller()
        exporter.set_policy(0x1000, exporter.base_policy().with_(
            no_reorder_addrs=frozenset({0x1010})))
        state = exporter.export_state()
        importer = make_controller()
        importer.set_policy(0x1000, importer.base_policy().with_(
            self_check=True, max_instructions=MIN_REGION))
        importer.import_state(state)
        merged = importer.policy_for(0x1000)
        assert merged.self_check  # local escalation survives
        assert merged.max_instructions == MIN_REGION
        assert 0x1010 in merged.no_reorder_addrs  # imported pin merged in
