"""Unit tests for the adaptive retranslation controller."""

from __future__ import annotations

import pytest

from repro.cms.config import CMSConfig
from repro.cms.retranslation import MIN_REGION, AdaptiveController
from repro.host.faults import HostFault, HostFaultKind

from test_tcache import make_translation


def make_controller(**config_overrides) -> AdaptiveController:
    from dataclasses import replace

    config = replace(CMSConfig(), **config_overrides)
    return AdaptiveController(config)


def fault(kind: HostFaultKind, site: int = 0x1010) -> HostFault:
    return HostFault(kind=kind, guest_addr=site)


class TestBasePolicy:
    def test_base_reflects_config(self):
        controller = make_controller(reorder_memory=False,
                                     max_region_instructions=64)
        policy = controller.base_policy()
        assert not policy.reorder_memory
        assert policy.max_instructions == 64

    def test_force_self_check_propagates(self):
        controller = make_controller(force_self_check=True)
        assert controller.base_policy().self_check

    def test_policy_for_unknown_entry_is_base(self):
        controller = make_controller()
        assert controller.policy_for(0x9999) == controller.base_policy()


class TestEscalation:
    def test_below_threshold_no_action(self):
        controller = make_controller(fault_threshold=3)
        t = make_translation()
        for _ in range(2):
            assert controller.note_fault(
                t, fault(HostFaultKind.ALIAS_VIOLATION), None
            ) is None

    def test_alias_ladder(self):
        controller = make_controller(fault_threshold=1)
        t = make_translation()
        # Stage 1: pin the faulting site.
        policy = controller.note_fault(
            t, fault(HostFaultKind.ALIAS_VIOLATION, 0x1010), None)
        assert 0x1010 in policy.no_reorder_addrs
        assert policy.reorder_memory
        # Stage 2+: narrow the region.
        policy = controller.note_fault(
            t, fault(HostFaultKind.ALIAS_VIOLATION, 0x1010), None)
        assert policy.max_instructions < CMSConfig().max_region_instructions
        # Keep narrowing until the floor, then disable reordering.
        for _ in range(10):
            policy = controller.note_fault(
                t, fault(HostFaultKind.ALIAS_VIOLATION, 0x1010), None)
            if policy is None:
                break
        final = controller.policy_for(t.entry_eip)
        assert final.max_instructions == MIN_REGION
        assert not final.reorder_memory

    def test_spec_mmio_fences_site(self):
        controller = make_controller(fault_threshold=1)
        t = make_translation()
        policy = controller.note_fault(
            t, fault(HostFaultKind.SPEC_MMIO, 0x1020), None)
        assert 0x1020 in policy.io_fence_addrs

    def test_genuine_guest_fault_narrows_then_pins(self):
        controller = make_controller(fault_threshold=1)
        t = make_translation()
        policy = None
        for _ in range(12):
            new = controller.note_fault(
                t, fault(HostFaultKind.GUEST_FAULT, 0x1010), True)
            policy = new or policy
        assert policy.max_instructions == MIN_REGION
        assert 0x1010 in policy.stop_addrs

    def test_speculative_guest_fault_pins_load(self):
        controller = make_controller(fault_threshold=1)
        t = make_translation()
        policy = controller.note_fault(
            t, fault(HostFaultKind.GUEST_FAULT, 0x1010), False)
        assert 0x1010 in policy.no_reorder_addrs
        policy = controller.note_fault(
            t, fault(HostFaultKind.GUEST_FAULT, 0x1010), False)
        assert not policy.control_speculation

    def test_storebuf_overflow_shrinks_commit_interval(self):
        controller = make_controller(fault_threshold=1)
        t = make_translation()
        policy = controller.note_fault(
            t, fault(HostFaultKind.STOREBUF_OVERFLOW), None)
        assert policy.commit_interval < CMSConfig().commit_interval

    def test_protection_faults_not_handled_here(self):
        controller = make_controller(fault_threshold=1)
        t = make_translation()
        assert controller.note_fault(
            t, fault(HostFaultKind.PROTECTION), None) is None

    def test_disabled_adaptation_never_escalates(self):
        controller = make_controller(adaptive_retranslation=False,
                                     fault_threshold=1)
        t = make_translation()
        for _ in range(10):
            assert controller.note_fault(
                t, fault(HostFaultKind.ALIAS_VIOLATION), None) is None

    def test_counters_are_per_site(self):
        controller = make_controller(fault_threshold=2)
        t = make_translation()
        assert controller.note_fault(
            t, fault(HostFaultKind.ALIAS_VIOLATION, 0x1010), None) is None
        assert controller.note_fault(
            t, fault(HostFaultKind.ALIAS_VIOLATION, 0x1020), None) is None
        # Second fault at the first site crosses its own threshold.
        policy = controller.note_fault(
            t, fault(HostFaultKind.ALIAS_VIOLATION, 0x1010), None)
        assert policy is not None
        assert 0x1010 in policy.no_reorder_addrs
        assert 0x1020 not in policy.no_reorder_addrs


class TestAccumulation:
    def test_set_policy_merges(self):
        controller = make_controller()
        base = controller.policy_for(0x1000)
        controller.set_policy(0x1000, base.with_(self_check=True))
        controller.set_policy(
            0x1000, base.with_(no_reorder_addrs=frozenset({0x1010})))
        accumulated = controller.policy_for(0x1000)
        assert accumulated.self_check
        assert 0x1010 in accumulated.no_reorder_addrs

    def test_policies_monotone_under_escalation(self):
        controller = make_controller(fault_threshold=1)
        t = make_translation()
        seen = [controller.policy_for(t.entry_eip)]
        kinds = [HostFaultKind.ALIAS_VIOLATION, HostFaultKind.SPEC_MMIO,
                 HostFaultKind.STOREBUF_OVERFLOW]
        for i in range(9):
            controller.note_fault(
                t, fault(kinds[i % 3], 0x1010 + i), None)
            seen.append(controller.policy_for(t.entry_eip))
        for earlier, later in zip(seen, seen[1:]):
            merged = earlier.merge(later)
            assert merged == later, "escalation must only tighten"
