"""Fleet supervisor: isolation, watchdogs, restart, shared translations.

The fleet layer's contract is the paper's containment story scaled up:
any failure — injected exception, hung dispatch, corrupted shared
cache entry, chaos storm — is confined to one tenant, and that
tenant's recovery (snapshot restart, backoff, circuit breaker) never
changes what any guest observes.  Every test here that runs guests
checks architectural outcomes against an unsupervised solo run.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import replace

import pytest

from repro.cache import persist
from repro.cms.config import CMSConfig
from repro.cms.degrade import ChaosMonkey, derive_seed
from repro.cms.system import CodeMorphingSystem
from repro.fleet import (
    FleetConfig,
    FleetSupervisor,
    SharedTranslationService,
    TenantSpec,
    TenantState,
)
from repro.fleet.chaos import run_fleet_campaign, run_fleet_trial
from repro.fuzz.genprog import generate
from repro.machine import Machine
from repro.tools.cli import main
from repro.workloads.builder import wrap

# Eager thresholds so tiny programs exercise translated (and shared)
# paths, as the fuzz oracle does.
FAST = CMSConfig(translation_threshold=4, fault_threshold=2)

# A two-procedure program: enough distinct regions to translate, plus
# a loop so every region crosses the threshold.
PROGRAM = wrap("""
    mov edi, 12
fl_outer:
    call fl_one
    call fl_two
    dec edi
    jnz fl_outer
    jmp fl_done
fl_one:
    mov eax, 0x1234
    imul eax, 0x9E3B
    xor esi, eax
    ret
fl_two:
    mov eax, 0x5A5A
    add eax, 77
    xor esi, eax
    add esi, 3
    ret
fl_done:
""")


def spec(tenant_id: int, source: str = PROGRAM, *,
         config: CMSConfig = FAST,
         max_instructions: int = 100_000) -> TenantSpec:
    return TenantSpec(tenant_id=tenant_id, source=source,
                      name=f"t{tenant_id}",
                      max_instructions=max_instructions, config=config)


def solo_outcome(source: str = PROGRAM, config: CMSConfig = FAST,
                 max_instructions: int = 100_000):
    """Unsupervised single-system reference run."""
    machine = Machine()
    entry = machine.load_source(source)
    system = CodeMorphingSystem(machine, config)
    result = system.run(entry, max_instructions=max_instructions)
    return result, system


def small_fleet(**overrides) -> FleetConfig:
    defaults = dict(
        slice_guest_instructions=32,
        slice_wall_budget=0.0,
        snapshot_interval_slices=2,
        share_refresh_rounds=1,
        restart_backoff_rounds=1,
        max_restarts=3,
    )
    defaults.update(overrides)
    return FleetConfig(**defaults)


class TestScheduling:
    def test_two_tenants_complete_with_identical_outputs(self, tmp_path):
        ref, _ = solo_outcome()
        supervisor = FleetSupervisor(
            [spec(0), spec(1)], small_fleet(snapshot_dir=str(tmp_path)))
        result = supervisor.run()
        assert result.health.healthy
        for tenant in supervisor.tenants:
            assert tenant.state is TenantState.DONE
            assert tenant.result.halted
            assert tenant.system.machine.console.output == \
                ref.console_output
            assert tenant.result.guest_instructions == \
                ref.guest_instructions

    def test_round_robin_interleaves(self):
        supervisor = FleetSupervisor([spec(0), spec(1)], small_fleet())
        result = supervisor.run()
        # Both tenants got multiple slices and neither monopolized the
        # scheduler: the round count is far below the slice total.
        assert all(t.slices > 2 for t in supervisor.tenants)
        assert result.rounds < sum(t.slices for t in supervisor.tenants)

    def test_histograms_observe_every_slice(self):
        supervisor = FleetSupervisor([spec(0)], small_fleet())
        supervisor.run()
        assert supervisor.slice_instructions.count == \
            supervisor.tenants[0].slices
        assert supervisor.latency_us.count == supervisor.tenants[0].slices


class TestWatchdog:
    def test_stalled_tenant_is_quarantined(self):
        fleet = small_fleet(watchdog_stall_slices=3,
                            watchdog_strike_limit=1, max_restarts=0,
                            park_policy="evict")
        supervisor = FleetSupervisor([spec(0)], fleet)
        # Replace the dispatcher with one that never retires anything:
        # the guest-clock watchdog must strike and quarantine.
        tenant = supervisor.tenants[0]
        tenant.build()
        tenant.system.run_slice = lambda budget, should_preempt=None: True
        for _ in range(4):
            supervisor.step_round()
        assert tenant.state in (TenantState.QUARANTINED,
                                TenantState.EVICTED)
        assert "watchdog" in (tenant.last_error or "")

    def test_wall_deadline_preempts_but_run_completes(self):
        # A 1-picosecond budget preempts after the first dispatch of
        # every slice; forward progress is still guaranteed, so the
        # guest finishes and the preemptions are just strikes.
        fleet = small_fleet(slice_wall_budget=1e-12,
                            watchdog_strike_limit=10 ** 6)
        ref, _ = solo_outcome()
        supervisor = FleetSupervisor([spec(0)], fleet)
        result = supervisor.run()
        tenant = supervisor.tenants[0]
        assert tenant.state is TenantState.DONE
        assert tenant.wall_preemptions > 0
        assert tenant.system.machine.console.output == ref.console_output
        assert result.health.healthy

    def test_zero_wall_budget_disables_clock_checks(self):
        supervisor = FleetSupervisor([spec(0)], small_fleet())
        supervisor.run()
        assert supervisor.tenants[0].wall_preemptions == 0


class TestQuarantineAndRestart:
    def test_single_kill_restarts_and_reconverges(self, tmp_path):
        ref, _ = solo_outcome()
        fleet = small_fleet(snapshot_dir=str(tmp_path))
        supervisor = FleetSupervisor([spec(0), spec(1)], fleet)
        fired = []

        def kill_once(sup, tenant, round_clock):
            if tenant.spec.tenant_id == 0 and round_clock >= 4 and \
                    not fired:
                fired.append(round_clock)
                raise RuntimeError("injected tenant failure")

        supervisor.before_slice = kill_once
        result = supervisor.run()
        victim, sibling = supervisor.tenants
        assert fired, "kill never fired"
        assert victim.restarts == 1
        assert victim.quarantines == 1
        # Backoff was respected: the restart round came after the
        # quarantine round plus the (first-restart) backoff.
        assert victim.state is TenantState.DONE
        # The restarted tenant warm-loaded its last good snapshot.
        assert victim.system.stats.snapshot_translations_loaded > 0
        # Reconvergence: both tenants match the unsupervised run.
        for tenant in (victim, sibling):
            assert tenant.system.machine.console.output == \
                ref.console_output
            assert tenant.result.guest_instructions == \
                ref.guest_instructions
        assert sibling.restarts == 0  # isolation: sibling untouched
        assert result.health.uncontained == 0

    def test_crash_loop_trips_breaker_to_parked(self, tmp_path):
        fleet = small_fleet(snapshot_dir=str(tmp_path), max_restarts=2)
        supervisor = FleetSupervisor([spec(0), spec(1)], fleet)

        def always_kill(sup, tenant, round_clock):
            if tenant.spec.tenant_id == 0 and \
                    tenant.state is TenantState.RUNNING:
                raise RuntimeError("persistent fault")

        supervisor.before_slice = always_kill
        supervisor.run(max_rounds=200)
        victim, sibling = supervisor.tenants
        assert victim.restarts == 2  # budget exhausted
        assert victim.quarantines >= 3
        assert sibling.state is TenantState.DONE  # fleet kept serving
        assert supervisor.uncontained == 0

    def test_backoff_doubles_per_restart(self):
        fleet = small_fleet(restart_backoff_rounds=2, max_restarts=5)
        tenant = FleetSupervisor([spec(0)], fleet).tenants[0]
        waits = []
        round_clock = 0
        for _ in range(3):
            tenant.quarantine(round_clock, "test")
            waits.append(tenant.resume_round - round_clock)
            round_clock = tenant.resume_round
            assert not tenant.try_restart(round_clock - 1)  # too early
            assert tenant.try_restart(round_clock)
        assert waits == [2, 4, 8]

    def test_evict_policy_removes_tenant(self, tmp_path):
        fleet = small_fleet(snapshot_dir=str(tmp_path), max_restarts=0,
                            park_policy="evict")
        supervisor = FleetSupervisor([spec(0)], fleet)

        def always_kill(sup, tenant, round_clock):
            raise RuntimeError("fatal")

        supervisor.before_slice = always_kill
        supervisor.run(max_rounds=50)
        tenant = supervisor.tenants[0]
        assert tenant.state is TenantState.EVICTED
        assert tenant.system is None

    def test_parked_tenant_serves_interpreter_only(self, tmp_path):
        fleet = small_fleet(snapshot_dir=str(tmp_path), max_restarts=0)
        supervisor = FleetSupervisor([spec(0)], fleet)
        killed = []

        def kill_running_once(sup, tenant, round_clock):
            if not killed:
                killed.append(round_clock)
                raise RuntimeError("fatal once")

        supervisor.before_slice = kill_running_once
        ref, _ = solo_outcome(config=FAST.interpreter_only())
        supervisor.run()
        tenant = supervisor.tenants[0]
        # Breaker tripped immediately (max_restarts=0) -> parked, and
        # the parked interpreter-only tenant still finished the guest.
        assert tenant.state is TenantState.DONE
        assert tenant.restarts == 0
        assert tenant.system.config.translation_threshold >= 2 ** 62
        assert tenant.system.stats.translations_made == 0
        assert tenant.system.machine.console.output == ref.console_output


class TestSharedTranslationService:
    def _published_store(self):
        result, system = solo_outcome()
        store = SharedTranslationService()
        published = store.publish_from(system, publisher=0)
        assert published > 0
        return store, system, result

    def test_import_registers_and_matches_solo(self):
        store, _, ref = self._published_store()
        machine = Machine()
        entry = machine.load_source(PROGRAM)
        system = CodeMorphingSystem(machine, FAST)
        imported, cursor = store.import_into(system, tenant=1)
        assert imported == len(store)
        assert cursor == len(store)
        assert store.stats.hit_rate == 1.0
        result = system.run(entry, max_instructions=100_000)
        assert result.console_output == ref.console_output
        # Imported translations did the work: (almost) nothing new.
        assert system.stats.translations_made < \
            store.stats.imported

    def test_duplicate_publish_is_counted_once(self):
        store, system, _ = self._published_store()
        before = len(store)
        store.publish_from(system, publisher=0)
        assert len(store) == before
        assert store.stats.duplicate_publishes == before

    def test_revalidation_rejects_stale_code_and_negative_caches(self):
        store, _, _ = self._published_store()
        machine = Machine()
        machine.load_source(PROGRAM)
        system = CodeMorphingSystem(machine, FAST)
        # Mutate one byte inside every published code range: §3.6.2
        # revalidation must reject every entry for THIS tenant.
        starts = {entry.payload["code_ranges"][0][0]
                  for entry in store._entries.values()}
        for start in starts:
            byte = machine.ram.read_bytes(start, 1)[0]
            machine.ram.write_bytes(start, bytes([byte ^ 0xFF]))
        imported, _ = store.import_into(system, tenant=1)
        assert imported == 0
        assert store.stats.rejected_revalidation == len(store)
        assert store.negative_cache_size() == len(store)
        # Second scan: negative cache short-circuits, no re-check.
        rejected_before = store.stats.rejected_revalidation
        imported, _ = store.import_into(system, tenant=1)
        assert imported == 0
        assert store.stats.rejected_revalidation == rejected_before
        assert store.stats.negative_hits >= len(store)

    def test_negative_cache_is_per_tenant(self):
        store, _, ref = self._published_store()
        stale = Machine()
        stale.load_source(PROGRAM)
        stale_system = CodeMorphingSystem(stale, FAST)
        start, _ = next(iter(store._entries.values())) \
            .payload["code_ranges"][0]
        byte = stale.ram.read_bytes(start, 1)[0]
        stale.ram.write_bytes(start, bytes([byte ^ 0xFF]))
        store.import_into(stale_system, tenant=1)
        # A different tenant with pristine RAM still imports fine.
        clean = Machine()
        clean.load_source(PROGRAM)
        clean_system = CodeMorphingSystem(clean, FAST)
        imported, _ = store.import_into(clean_system, tenant=2)
        assert imported == len(store)

    def test_corrupted_entry_is_rejected_poisoned_and_never_offered(self):
        store, _, _ = self._published_store()
        key = store.corrupt_entry(0)
        assert key is not None
        total = len(store)
        machine = Machine()
        machine.load_source(PROGRAM)
        system = CodeMorphingSystem(machine, FAST)
        imported, _ = store.import_into(system, tenant=1)
        # Integrity checksum caught the corruption before decode.
        assert store.stats.rejected_checksum == 1
        assert key in store.poisoned_keys
        assert imported == total - 1
        assert len(store) == total - 1  # dropped from the store
        # The poisoned identity can never be re-published or offered.
        fresh = Machine()
        fresh.load_source(PROGRAM)
        fresh_system = CodeMorphingSystem(fresh, FAST)
        attempts_before = store.stats.import_attempts
        store.import_into(fresh_system, tenant=2)
        assert store.stats.rejected_checksum == 1  # no second rejection
        assert store.stats.import_attempts == \
            attempts_before + total - 1

    def test_config_digest_gates_imports(self):
        store, _, _ = self._published_store()
        machine = Machine()
        machine.load_source(PROGRAM)
        other = CodeMorphingSystem(
            machine, replace(FAST, reorder_memory=False))
        attempts_before = store.stats.import_attempts
        imported, _ = store.import_into(other, tenant=3)
        assert imported == 0
        assert store.stats.import_attempts == attempts_before


class TestFleetChaosCampaign:
    def test_short_campaign_is_clean(self):
        result = run_fleet_campaign(trials=6, seed=3)
        assert result.ok, result.contaminations
        assert result.trials == 6
        assert result.uncontained == 0
        assert result.kills + result.corruptions + result.storms == 6

    def test_trial_is_deterministic(self):
        first = run_fleet_trial(4242)
        second = run_fleet_trial(4242)
        assert first.mode == second.mode
        assert first.victim == second.victim
        assert first.restarts == second.restarts
        assert first.imported == second.imported
        assert first.poisoned == second.poisoned
        assert first.ok and second.ok


class TestChaosSeedDerivation:
    """Satellite: per-tenant seed derivation is stable and decorrelated."""

    def test_derive_seed_matches_sha256(self):
        material = "7:3:chaos".encode("utf-8")
        expected = int.from_bytes(
            hashlib.sha256(material).digest()[:8], "big")
        assert derive_seed(7, 3, "chaos") == expected

    def test_derive_seed_is_stable_across_sessions(self):
        # Pinned value: catches accidental algorithm changes, which
        # would silently re-seed every recorded campaign.
        assert derive_seed(0, 1, "chaos") == 0xF321BBCFAF598F23

    def test_streams_decorrelate_by_tenant_and_stream(self):
        base = derive_seed(11, 0, "chaos")
        assert derive_seed(11, 1, "chaos") != base
        assert derive_seed(11, 0, "inject") != base
        assert derive_seed(12, 0, "chaos") != base

    def test_chaos_monkey_tenant_zero_keeps_historical_stream(self):
        import random as _random

        legacy = _random.Random(99)
        monkey = ChaosMonkey(0.5, 99, tenant=0)
        assert [monkey._rng.random() for _ in range(8)] == \
            [legacy.random() for _ in range(8)]

    def test_chaos_monkey_streams_differ_between_tenants(self):
        a = ChaosMonkey(0.5, 99, tenant=1)
        b = ChaosMonkey(0.5, 99, tenant=2)
        same = ChaosMonkey(0.5, 99, tenant=1)
        stream_a = [a._rng.random() for _ in range(16)]
        stream_b = [b._rng.random() for _ in range(16)]
        stream_same = [same._rng.random() for _ in range(16)]
        assert stream_a != stream_b
        assert stream_a == stream_same

    def test_genprog_tenant_salt_changes_plan_not_body(self):
        base = generate(1234, inject=True)
        t0 = generate(1234, inject=True, tenant=0)
        t1 = generate(1234, inject=True, tenant=1)
        # Tenant 0 is the historical stream: byte-identical program.
        assert t0.source == base.source
        # Tenant 1 draws an independent injection plan...
        assert t1.plan.events != t0.plan.events
        # ...but the computational body is the same program.
        assert t1.seed == t0.seed

    def test_fleet_tenants_get_salted_chaos_configs(self):
        config = replace(FAST, chaos_rate=0.01, chaos_seed=5)
        supervisor = FleetSupervisor(
            [spec(0, config=config), spec(1, config=config)],
            small_fleet())
        for tenant in supervisor.tenants:
            tenant.build()
        m0 = supervisor.tenants[0].system.chaos
        m1 = supervisor.tenants[1].system.chaos
        assert [m0._rng.random() for _ in range(8)] != \
            [m1._rng.random() for _ in range(8)]


class TestSnapshotAccounting:
    """Satellite: SnapshotLoadReport revalidation accounting."""

    def _cold_save(self, path: str):
        machine = Machine()
        entry = machine.load_source(PROGRAM)
        system = CodeMorphingSystem(
            machine, replace(FAST, snapshot_path=path,
                             snapshot_save=True))
        result = system.run(entry, max_instructions=100_000)
        assert result.halted
        system.shutdown()
        return system

    def test_one_mutation_drops_exactly_one_entry(self, tmp_path):
        path = str(tmp_path / "acct.cms-snapshot.json")
        self._cold_save(path)
        payload = persist.read_snapshot_file(path)
        resident = [payload["translations"][i] for i in payload["resident"]]
        assert len(resident) >= 2
        # Pick a byte covered by exactly one resident translation.
        target = None
        for row in resident:
            start, length = row["code_ranges"][0]
            for addr in range(start, start + length):
                covering = [r for r in resident if any(
                    s <= addr < s + n for s, n in r["code_ranges"])]
                if len(covering) == 1:
                    target = (addr, row["entry_eip"])
                    break
            if target:
                break
        assert target is not None
        addr, entry_eip = target
        machine = Machine()
        machine.load_source(PROGRAM)
        original = machine.ram.read_bytes(addr, 1)
        machine.ram.write_bytes(addr, bytes([original[0] ^ 0xFF]))
        system = CodeMorphingSystem(
            machine, replace(FAST, snapshot_path=path))
        report = system.snapshot_report
        assert report is not None
        # Exactly the covering translation was dropped, nothing else.
        assert report.dropped == 1
        assert report.dropped_entries == [entry_eip]
        assert report.loaded == len(resident) - 1
        assert system.tcache.lookup(entry_eip) is None
        # Stats counters agree with the report.
        assert system.stats.snapshot_translations_loaded == report.loaded
        assert system.stats.snapshot_translations_dropped == 1

    def test_inspect_counters_match_load_report(self, tmp_path, capsys):
        path = str(tmp_path / "acct.cms-snapshot.json")
        self._cold_save(path)
        payload = persist.read_snapshot_file(path)
        info = persist.inspect_snapshot(path)
        assert info["resident"] == len(payload["resident"])
        # A clean warm load registers exactly what inspect reports.
        machine = Machine()
        machine.load_source(PROGRAM)
        system = CodeMorphingSystem(
            machine, replace(FAST, snapshot_path=path))
        report = system.snapshot_report
        assert report.loaded == info["resident"]
        assert report.dropped == 0
        assert main(["snapshot", "inspect", path]) == 0
        out = capsys.readouterr().out
        assert f"({info['resident']} resident" in out


class TestFleetCLI:
    def test_fleet_run_healthy(self, capsys):
        assert main(["fleet", "run", "gcc", "sc"]) == 0
        out = capsys.readouterr().out
        assert "fleet status         HEALTHY" in out
        assert "aggregate" in out

    def test_fleet_campaign_smoke(self, capsys):
        assert main(["fleet", "campaign", "--trials", "2",
                     "--seed", "11", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "0 cross-tenant contaminations" in out

    def test_health_fleet_live(self, capsys):
        assert main(["health", "--fleet", "gcc"]) == 0
        out = capsys.readouterr().out
        assert "HEALTHY" in out

    def test_health_fleet_offline_roundtrip(self, tmp_path, capsys):
        session = str(tmp_path / "fleet.jsonl")
        assert main(["fleet", "run", "gcc",
                     "--obs-jsonl", session]) == 0
        capsys.readouterr()
        assert main(["health", "--fleet", "--session", session]) == 0
        out = capsys.readouterr().out
        assert "fleet-health records" in out
        assert "HEALTHY" in out

    def test_health_fleet_degrades_without_records(self, tmp_path,
                                                   capsys):
        """Satellite: rc 2 and a clear diagnostic, not a traceback,
        when the session has no fleet observability records."""
        session = tmp_path / "plain.jsonl"
        session.write_text(json.dumps({"kind": "run-summary"}) + "\n")
        assert main(["health", "--fleet", "--session",
                     str(session)]) == 2
        err = capsys.readouterr().err
        assert "no observability data" in err

    def test_health_fleet_missing_session_rc2(self, capsys):
        assert main(["health", "--fleet", "--session",
                     "/nonexistent/fleet.jsonl"]) == 2


SOAK_LOOP = wrap("""
    mov edi, 50000
sk_outer:
    mov ecx, 12
sk_inner:
    add eax, ecx
    xor esi, eax
    dec ecx
    jnz sk_inner
    dec edi
    jnz sk_outer
""")


@pytest.mark.slow
class TestSoak:
    """Satellite: bounded soak — millions of guest cycles across a
    mixed fleet (hot loops, SMC game, interrupt-driven boot) with
    periodic auditor sweeps, ending with a clean aggregate report and
    bounded telemetry growth."""

    def test_soak_fleet(self, tmp_path):
        from repro.workloads import ALL_WORKLOADS

        session = str(tmp_path / "soak.jsonl")
        audited = replace(CMSConfig(), audit_interval=512)
        specs = [
            TenantSpec(0, SOAK_LOOP, name="loop0",
                       max_instructions=3_000_000, config=audited),
            TenantSpec(1, SOAK_LOOP, name="loop1",
                       max_instructions=3_000_000, config=audited),
            TenantSpec(2, ALL_WORKLOADS["quake_demo2"].source,
                       name="smc", max_instructions=3_000_000,
                       config=audited),
            TenantSpec(3, ALL_WORKLOADS["dos_boot"].source,
                       name="irq", max_instructions=3_000_000,
                       config=audited),
        ]
        fleet = FleetConfig(
            slice_guest_instructions=10_000,
            snapshot_dir=str(tmp_path / "snaps"),
            snapshot_interval_slices=32,
            share_refresh_rounds=8,
            telemetry_path=session,
        )
        os.makedirs(fleet.snapshot_dir, exist_ok=True)
        supervisor = FleetSupervisor(specs, fleet)
        result = supervisor.run()
        # ~5M guest cycles across the fleet, every tenant done.
        assert result.total_guest_instructions >= 5_000_000
        assert result.health.healthy, result.health.describe()
        for tenant in supervisor.tenants:
            assert tenant.state is TenantState.DONE
            # Periodic auditor sweeps actually ran and repaired nothing.
            report = tenant.system.health_report(run_audit=True)
            assert report.audit_runs > 0
            assert report.healthy
        # Telemetry growth is bounded by the sink's rotation budget.
        sink = supervisor.telemetry
        total = sum(
            os.path.getsize(os.path.join(os.path.dirname(session), f))
            for f in os.listdir(os.path.dirname(session))
            if f.startswith(os.path.basename(session)))
        assert total <= sink.max_bytes * (sink.max_files + 1)
