"""Tests for the observability layer.

Unit coverage for the four pillars (metrics registry, phase profiler,
hot-spot profiler, JSONL telemetry) plus system tests pinning the two
properties the layer promises: the deterministic core is unaffected by
turning observability on (identical molecule counts and output), and
everything emitted is schema-versioned and machine-readable.
"""

from __future__ import annotations

from dataclasses import replace
from types import SimpleNamespace

import pytest

from conftest import run_cms
from repro import CMSConfig
from repro.obs import (
    SCHEMA_VERSION,
    EventCountSink,
    HistogramMetric,
    HotSpotProfiler,
    MetricsRegistry,
    ObservationBus,
    PhaseProfiler,
    TelemetrySink,
    read_jsonl,
)

HOT_LOOP = """
start:
    mov esi, 0
    mov ecx, 0
loop:
    mov eax, ecx
    imul eax, 13
    xor esi, eax
    inc ecx
    cmp ecx, 400
    jne loop
    cli
    hlt
"""

FAST = CMSConfig(translation_threshold=4)


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------


class TestHistogram:
    def test_bucket_edges_are_inclusive_upper_bounds(self):
        hist = HistogramMetric("h", (1, 2, 4))
        for value, bucket in [(0, 0), (1, 0), (2, 1), (3, 2), (4, 2)]:
            hist.reset()
            hist.observe(value)
            assert hist.counts[bucket] == 1, (value, hist.counts)

    def test_overflow_bucket(self):
        hist = HistogramMetric("h", (1, 2, 4))
        hist.observe(5)
        hist.observe(1_000_000)
        assert hist.counts == [0, 0, 0, 2]
        assert len(hist.counts) == len(hist.bounds) + 1

    def test_aggregates(self):
        hist = HistogramMetric("h", (10,))
        for value in (3, 7, 20):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == 30
        assert hist.min_seen == 3
        assert hist.max_seen == 20

    def test_bounds_must_strictly_increase(self):
        with pytest.raises(ValueError):
            HistogramMetric("h", (2, 1))
        with pytest.raises(ValueError):
            HistogramMetric("h", (1, 1))
        with pytest.raises(ValueError):
            HistogramMetric("h", ())

    def test_reset_clears_everything(self):
        hist = HistogramMetric("h", (1, 2))
        hist.observe(3)
        hist.reset()
        assert hist.counts == [0, 0, 0]
        assert hist.count == 0
        assert hist.total == 0
        assert hist.min_seen is None
        assert hist.max_seen is None


class TestMetricsRegistry:
    def test_metrics_are_created_once(self):
        registry = MetricsRegistry()
        counter = registry.counter("a")
        counter.inc(3)
        assert registry.counter("a") is counter
        assert registry.counter("a").value == 3
        assert registry.histogram("h") is registry.histogram("h")

    def test_snapshot_shape(self):
        registry = MetricsRegistry(histogram_buckets=(1, 2))
        registry.counter("z").inc()
        registry.counter("a").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(2)
        snap = registry.snapshot()
        assert list(snap) == ["counters", "gauges", "histograms"]
        assert list(snap["counters"]) == ["a", "z"]  # sorted
        assert snap["counters"] == {"a": 2, "z": 1}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["bounds"] == [1, 2]
        assert snap["histograms"]["h"]["counts"] == [0, 1, 0]

    def test_set_counters_with_prefix(self):
        registry = MetricsRegistry()
        registry.set_counters({"x": 7, "y": 8}, prefix="stats.")
        assert registry.counter("stats.x").value == 7
        assert registry.counter("stats.y").value == 8

    def test_reset_keeps_registrations(self):
        registry = MetricsRegistry(histogram_buckets=(4,))
        registry.counter("c").inc()
        registry.histogram("h").observe(9)
        registry.reset()
        snap = registry.snapshot()
        assert snap["counters"] == {"c": 0}
        assert snap["histograms"]["h"]["counts"] == [0, 0]
        assert snap["histograms"]["h"]["bounds"] == [4]  # shape kept


# ----------------------------------------------------------------------
# Phase profiler
# ----------------------------------------------------------------------


class TestPhaseProfiler:
    def test_nesting_splits_self_and_inclusive_time(self):
        now = [0.0]
        prof = PhaseProfiler(clock=lambda: now[0])
        with prof.phase("outer"):
            now[0] += 1.0
            with prof.phase("inner"):
                now[0] += 2.0
            now[0] += 3.0
        stats = {stat.name: stat for stat in prof.stats()}
        assert stats["outer"].seconds == pytest.approx(6.0)
        assert stats["outer"].self_seconds == pytest.approx(4.0)
        assert stats["outer/inner"].seconds == pytest.approx(2.0)
        assert stats["outer/inner"].self_seconds == pytest.approx(2.0)
        assert stats["outer"].calls == 1
        assert stats["outer/inner"].calls == 1

    def test_same_name_under_different_parents_is_distinct(self):
        now = [0.0]
        prof = PhaseProfiler(clock=lambda: now[0])
        with prof.phase("a"):
            with prof.phase("work"):
                now[0] += 1.0
        with prof.phase("b"):
            with prof.phase("work"):
                now[0] += 2.0
        snap = prof.snapshot()
        assert snap["a/work"]["seconds"] == pytest.approx(1.0)
        assert snap["b/work"]["seconds"] == pytest.approx(2.0)

    def test_reentry_accumulates_calls(self):
        now = [0.0]
        prof = PhaseProfiler(clock=lambda: now[0])
        for _ in range(3):
            with prof.phase("p"):
                now[0] += 1.0
        (stat,) = prof.stats()
        assert stat.calls == 3
        assert stat.seconds == pytest.approx(3.0)

    def test_stats_order_outermost_first(self):
        now = [0.0]
        prof = PhaseProfiler(clock=lambda: now[0])
        with prof.phase("top"):
            with prof.phase("child"):
                now[0] += 1.0
        names = [stat.name for stat in prof.stats()]
        assert names == ["top", "top/child"]
        assert "child" in prof.describe()

    def test_reset(self):
        prof = PhaseProfiler(clock=lambda: 0.0)
        with prof.phase("p"):
            pass
        prof.reset()
        assert prof.stats() == []


# ----------------------------------------------------------------------
# Hot-spot profiler
# ----------------------------------------------------------------------


class TestHotSpots:
    def test_top_ranks_by_requested_key(self):
        prof = HotSpotProfiler()
        prof.note_dispatch(0x100, instructions=10, molecules=50)
        prof.note_dispatch(0x200, instructions=90, molecules=20)
        prof.note_fault(0x100)
        by_instr = prof.top(sort="instructions")
        assert [r.entry_eip for r in by_instr] == [0x200, 0x100]
        by_mols = prof.top(sort="molecules")
        assert [r.entry_eip for r in by_mols] == [0x100, 0x200]
        by_faults = prof.top(sort="faults")
        assert by_faults[0].entry_eip == 0x100

    def test_bad_sort_key_raises(self):
        with pytest.raises(ValueError):
            HotSpotProfiler().top(sort="bogus")

    def test_interp_pool_and_snapshot(self):
        prof = HotSpotProfiler()
        prof.note_interp(5)
        prof.note_interp()
        prof.note_dispatch(0x300, instructions=1, molecules=2)
        prof.note_translation(0x300)
        snap = prof.snapshot()
        assert snap["interp_instructions"] == 6
        assert snap["regions"][0]["entry_eip"] == 0x300
        assert snap["regions"][0]["translations"] == 1


# ----------------------------------------------------------------------
# Telemetry sink
# ----------------------------------------------------------------------


class TestTelemetry:
    def test_schema_round_trip(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with TelemetrySink(path, source="test") as sink:
            sink.emit("alpha", {"x": 1})
            sink.emit("beta", {"y": [1, 2]})
            sink.record(SimpleNamespace(value="fault"), eip=0x42, detail="d")
        records = read_jsonl(path)
        assert [r["kind"] for r in records] == ["alpha", "beta", "event"]
        assert [r["seq"] for r in records] == [1, 2, 3]
        assert all(r["v"] == SCHEMA_VERSION for r in records)
        assert all(r["source"] == "test" for r in records)
        assert records[0]["x"] == 1
        assert records[1]["y"] == [1, 2]
        assert records[2] == {
            "v": SCHEMA_VERSION,
            "kind": "event",
            "seq": 3,
            "source": "test",
            "event": "fault",
            "eip": 0x42,
            "detail": "d",
        }

    def test_rotation_bounds_file_count_and_size(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        sink = TelemetrySink(path, max_bytes=256, max_files=3, source="r")
        for index in range(100):
            sink.emit("tick", {"index": index})
        sink.close()
        generations = sorted(p.name for p in tmp_path.iterdir())
        assert generations == ["t.jsonl", "t.jsonl.1", "t.jsonl.2"]
        for name in generations:
            assert (tmp_path / name).stat().st_size <= 256
        # The newest records are in the active file, in order.
        latest = read_jsonl(path)
        assert latest[-1]["index"] == 99
        seqs = [r["seq"] for r in latest]
        assert seqs == sorted(seqs)


# ----------------------------------------------------------------------
# Observation bus
# ----------------------------------------------------------------------


class _RecordingSink:
    def __init__(self):
        self.calls = []

    def record(self, event, eip=None, detail=""):
        self.calls.append((event, eip, detail))


class TestBus:
    def test_fan_out_and_removal(self):
        bus = ObservationBus()
        first, second = _RecordingSink(), _RecordingSink()
        bus.add_sink(first)
        bus.add_sink(second)
        bus.record("ev", eip=1, detail="x")
        bus.remove_sink(second)
        bus.record("ev2")
        assert first.calls == [("ev", 1, "x"), ("ev2", None, "")]
        assert second.calls == [("ev", 1, "x")]

    def test_event_count_sink(self):
        registry = MetricsRegistry()
        sink = EventCountSink(registry)
        sink.record(SimpleNamespace(value="translate"))
        sink.record(SimpleNamespace(value="translate"))
        sink.record(SimpleNamespace(value="fault"))
        assert registry.counter("events.translate").value == 2
        assert registry.counter("events.fault").value == 1


# ----------------------------------------------------------------------
# System: observability must not perturb the deterministic core
# ----------------------------------------------------------------------


class TestSystemIntegration:
    def test_obs_off_and_on_are_molecule_identical(self):
        off_system, off_result = run_cms(HOT_LOOP, FAST)
        on_system, on_result = run_cms(
            HOT_LOOP, replace(FAST, obs_enabled=True)
        )
        assert off_result.halted and on_result.halted
        assert on_result.console_output == off_result.console_output
        assert (
            on_system.stats.as_dict(FAST.cost)
            == off_system.stats.as_dict(FAST.cost)
        )
        assert off_system.obs is None
        assert on_system.obs is not None

    def test_obs_on_attributes_the_hot_region(self):
        system, result = run_cms(HOT_LOOP, replace(FAST, obs_enabled=True))
        assert result.halted
        assert system.stats.translations_made >= 1
        regions = system.obs.hotspots.top()
        assert regions, "hot loop produced no region profile"
        total_attributed = sum(r.instructions for r in regions)
        assert total_attributed > 0
        dispatch_hist = system.obs.registry.histogram(
            "dispatch.guest_instructions"
        )
        assert dispatch_hist.count == sum(r.dispatches for r in regions)
        phases = system.obs.phases.snapshot()
        # Dispatches run under "jit-execute" with the template JIT on
        # (the default) and "execute" on the simulated-VLIW path.
        assert "execute" in phases or "jit-execute" in phases
        assert "interpret" in phases

    def test_run_summary_telemetry(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        config = replace(FAST, obs_enabled=True, obs_jsonl_path=path)
        system, result = run_cms(HOT_LOOP, config)
        assert result.halted
        records = read_jsonl(path)
        assert all(r["v"] == SCHEMA_VERSION for r in records)
        summaries = [r for r in records if r["kind"] == "run-summary"]
        assert len(summaries) == 1
        summary = summaries[0]
        counters = summary["metrics"]["counters"]
        assert counters["stats.translations_made"] == (
            system.stats.translations_made
        )
        assert summary["hotspots"]["regions"]
        assert summary["run"]["halted"] is True
