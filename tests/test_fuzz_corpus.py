"""Replay every frozen fuzz reproducer in ``tests/corpus/``.

Each ``.t86`` entry was once a fuzzer-found (or deliberately crafted)
differential witness; replaying them against the *full* dial matrix on
every run makes each past mismatch a permanent regression test.  Runs
in the ``fuzz`` lane (``pytest -m fuzz``), not tier-1.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.fuzz import load_corpus, run_differential

pytestmark = pytest.mark.fuzz

CORPUS_DIR = Path(__file__).parent / "corpus"
ENTRIES = load_corpus(CORPUS_DIR)


def test_corpus_is_not_empty():
    assert ENTRIES, f"no corpus entries under {CORPUS_DIR}"


@pytest.mark.parametrize("entry", ENTRIES, ids=[e.name for e in ENTRIES])
def test_corpus_entry_replays_clean(entry):
    mismatches = run_differential(entry)
    assert not mismatches, "\n\n".join(m.describe() for m in mismatches)
