"""Template-JIT semantics tests (host/jit.py).

The JIT is a wall-clock dial: with ``template_jit`` on or off, every
run must be molecule-identical and architecturally identical — the
generated Python only replaces the simulated VLIW's per-atom dispatch,
never what executes.  These tests pin that contract on the edges where
it is easiest to break: mid-translation faults, alias bailouts, SMC
invalidation, fuel exhaustion, and compile failure.
"""

from __future__ import annotations

from dataclasses import replace

from conftest import assert_equivalent, run_cms
from repro import CMSConfig
from repro.host import jit as jit_module
from repro.workloads import get_workload, run_workload

FAST = CMSConfig(translation_threshold=4, fault_threshold=2)
NO_JIT = replace(FAST, template_jit=False)

HOT_LOOP = """
start:
    mov esi, 0
    mov ecx, 0
loop:
    mov eax, ecx
    imul eax, 13
    xor esi, eax
    inc ecx
    cmp ecx, 400
    jne loop
    cli
    hlt
"""

# Patches its own inner-loop immediate every frame (stylized SMC): the
# JIT-resident translation takes protection/self-check faults mid-run
# and is repeatedly invalidated and recompiled.
SMC_LOOP = """
start:
    mov edi, 0
    mov esi, 0
frame:
    mov eax, edi
    imul eax, 17
    add eax, 0x01010101
    mov ebx, patch_site + 2
    store [ebx], eax
    mov ecx, 0
inner:
patch_site:
    add esi, 0x11111111
    rol esi, 1
    inc ecx
    cmp ecx, 30
    jl inner
    inc edi
    cmp edi, 40
    jl frame
    cli
    hlt
"""


def _dial_invisible_stats(stats) -> dict:
    """Stats that must match with the JIT dial on or off.

    Only the JIT's own accounting (dispatch/compile/bailout volume) may
    differ between the two engines.
    """
    out = stats.as_dict()
    return {name: value for name, value in out.items()
            if not name.startswith("jit_")}


def _assert_dial_invisible(source: str, config: CMSConfig) -> tuple:
    """Run ``source`` with the JIT on and off; everything but the JIT's
    own counters must be identical, bit for bit."""
    on_system, on_result = run_cms(source, config)
    off_system, off_result = run_cms(source, replace(config,
                                                     template_jit=False))
    assert on_result.halted and off_result.halted
    assert on_result.console_output == off_result.console_output
    assert on_system.state.snapshot() == off_system.state.snapshot()
    on_ram = on_system.machine.ram
    off_ram = off_system.machine.ram
    assert on_ram.read_bytes(0, on_ram.size) == \
        off_ram.read_bytes(0, off_ram.size)
    assert _dial_invisible_stats(on_system.stats) == \
        _dial_invisible_stats(off_system.stats)
    assert off_system.stats.jit_dispatches == 0
    return on_system, off_system


class TestDialInvisibility:
    def test_hot_loop_molecule_identical(self):
        on_system, _ = _assert_dial_invisible(HOT_LOOP, FAST)
        assert on_system.stats.jit_dispatches > 0
        assert on_system.stats.jit_compiles > 0
        assert on_system.stats.jit_compile_failures == 0

    def test_smc_loop_molecule_identical(self):
        on_system, _ = _assert_dial_invisible(SMC_LOOP, FAST)
        assert on_system.stats.smc_invalidations >= 1

    def test_equivalent_to_interpreter(self):
        both = assert_equivalent(HOT_LOOP, config=FAST)
        assert both.cms_system.stats.jit_dispatches > 0


class TestFaultBailouts:
    def test_mid_translation_fault_rolls_back_exactly(self):
        # The SMC store faults mid-translation out of JIT-generated
        # code; interpreter equivalence (registers, RAM, console)
        # proves the rollback restored the exact pre-dispatch state.
        both = assert_equivalent(SMC_LOOP, config=FAST)
        stats = both.cms_system.stats
        assert stats.rollbacks >= 1
        fault_bails = [reason for reason in stats.jit_bailouts
                       if reason.startswith("fault-")]
        assert fault_bails, (
            f"no fault bailouts recorded: {dict(stats.jit_bailouts)}"
        )

    def test_alias_check_bailout(self):
        workload = get_workload("alias_stress")
        on = run_workload(workload, FAST)
        off = run_workload(workload, NO_JIT)
        assert on.console_output == off.console_output
        assert on.total_molecules == off.total_molecules
        stats = on.system.stats
        assert stats.jit_bailouts["fault-alias_violation"] >= 1
        assert stats.faults["ALIAS_VIOLATION"] >= 1

    def test_interrupt_bailout(self):
        workload = get_workload("dos_boot")
        on = run_workload(workload, FAST)
        off = run_workload(workload, NO_JIT)
        assert on.console_output == off.console_output
        assert on.total_molecules == off.total_molecules
        assert on.system.stats.jit_bailouts["interrupt"] >= 1

    def test_fuel_exhaustion_mid_jit_block(self):
        config = replace(FAST, dispatch_fuel_molecules=8)
        on_system, _ = _assert_dial_invisible(HOT_LOOP, config)
        assert on_system.stats.jit_bailouts["fuel"] >= 1
        assert on_system.stats.fuel_exits >= 1


class TestInvalidation:
    def _jit_resident_translation(self):
        system, result = run_cms(HOT_LOOP, FAST)
        assert result.halted
        resident = [t for t in system.tcache.translations()
                    if t.host_code is not None]
        assert resident, "no JIT-resident translation after a hot loop"
        return system, resident

    def test_invalidation_drops_compiled_callable(self):
        system, resident = self._jit_resident_translation()
        for translation in resident:
            system.tcache.invalidate_translation(translation)
            assert translation.host_code is None
            assert not translation.valid

    def test_flush_drops_compiled_callable(self):
        system, resident = self._jit_resident_translation()
        system.tcache.flush()
        assert all(t.host_code is None for t in resident)

    def test_smc_invalidation_drops_compiled_callable(self):
        system, result = run_cms(SMC_LOOP, FAST)
        assert result.halted
        assert system.stats.smc_invalidations >= 1
        # Anything still resident must be valid; every invalidated
        # translation must have dropped its template on the way out.
        for translation in system.tcache.translations():
            if translation.host_code is not None:
                assert translation.valid


class TestFallbacks:
    def test_uncompilable_translation_falls_back_to_vliw(self, monkeypatch):
        monkeypatch.setattr(jit_module, "compile_translation",
                            lambda translation, cpu, stats=None: None)
        on_system, on_result = run_cms(HOT_LOOP, FAST)
        off_system, off_result = run_cms(HOT_LOOP, NO_JIT)
        assert on_result.halted
        assert on_result.console_output == off_result.console_output
        assert _dial_invisible_stats(on_system.stats) == \
            _dial_invisible_stats(off_system.stats)
        stats = on_system.stats
        assert stats.jit_compile_failures >= 1
        assert stats.jit_bailouts["uncompilable"] >= 1
        assert stats.jit_compiles == 0

    def test_degraded_tiers_skip_the_jit(self):
        config = replace(FAST, degrade_tier_floor=2)
        system, result = run_cms(HOT_LOOP, config)
        assert result.halted
        assert system.stats.dispatches > 0
        assert system.stats.jit_dispatches == 0

    def test_warm_loaded_translations_recompile_lazily(self, tmp_path):
        path = str(tmp_path / "snap.json")
        cold = replace(FAST, snapshot_path=path, snapshot_save=True)
        cold_system, cold_result = run_cms(HOT_LOOP, cold)
        cold_system.shutdown()
        warm = replace(FAST, snapshot_path=path)
        warm_system, warm_result = run_cms(HOT_LOOP, warm)
        assert warm_result.halted
        assert warm_result.console_output == cold_result.console_output
        assert warm_system.stats.snapshot_translations_loaded >= 1
        # The callable is process-local: never persisted, rebuilt on
        # first dispatch of the reloaded translation.
        assert warm_system.stats.jit_compiles >= 1
