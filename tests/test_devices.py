"""Tests for the device models."""

from __future__ import annotations

import pytest

from repro.devices.console import Console
from repro.devices.disk import SECTOR_SIZE, Disk
from repro.devices.dma import DMAController
from repro.devices.framebuffer import Framebuffer
from repro.devices.nic import NetworkInterface
from repro.devices.pic import InterruptController
from repro.devices.port_bus import PortBus
from repro.devices.timer import Timer
from repro.isa.exceptions import IRQ_BASE
from repro.memory.bus import MemoryBus
from repro.memory.physical import PhysicalMemory


class TestPortBus:
    def test_unknown_port_reads_ones(self):
        ports = PortBus()
        assert ports.read(0x1234) == 0xFFFFFFFF

    def test_unknown_port_write_ignored(self):
        ports = PortBus()
        ports.write(0x1234, 5)  # no exception

    def test_register_and_dispatch(self):
        ports = PortBus()
        seen = []
        ports.register(0x10, reader=lambda: 7, writer=seen.append)
        assert ports.read(0x10) == 7
        ports.write(0x10, 9)
        assert seen == [9]

    def test_double_registration_rejected(self):
        ports = PortBus()
        ports.register(0x10, reader=lambda: 0)
        with pytest.raises(ValueError):
            ports.register(0x10, reader=lambda: 1)


class TestConsole:
    def test_port_output(self):
        ports = PortBus()
        console = Console()
        console.attach(ports)
        for ch in b"hi":
            ports.write(0xE9, ch)
        assert console.output == "hi"

    def test_mmio_output(self):
        console = Console()
        console.mmio_write(0, ord("x"), 1)
        assert console.output == "x"
        assert console.mmio_read(4, 4) == 1  # status ready


class TestPIC:
    def test_pending_and_ack(self):
        pic = InterruptController()
        assert not pic.has_pending()
        pic.request_irq(3)
        assert pic.pending_vector() == IRQ_BASE + 3
        pic.acknowledge(IRQ_BASE + 3)
        assert not pic.has_pending()

    def test_priority_lowest_irq_first(self):
        pic = InterruptController()
        pic.request_irq(5)
        pic.request_irq(1)
        assert pic.pending_vector() == IRQ_BASE + 1

    def test_in_service_blocks_same_line_until_eoi(self):
        pic = InterruptController()
        pic.request_irq(0)
        pic.acknowledge(IRQ_BASE)
        pic.request_irq(0)
        assert not pic.has_pending()  # blocked while in service
        pic._write_command(0x20)  # EOI
        assert pic.has_pending()

    def test_masking(self):
        pic = InterruptController()
        pic._write_mask(0b1)
        pic.request_irq(0)
        assert not pic.has_pending()
        pic._write_mask(0)
        assert pic.has_pending()

    def test_ports(self):
        ports = PortBus()
        pic = InterruptController()
        pic.attach(ports)
        pic.request_irq(2)
        assert ports.read(0x20) == 0b100
        ports.write(0x21, 0xFFFF)
        assert not pic.has_pending()


class TestTimer:
    def test_fires_every_period(self):
        pic = InterruptController()
        timer = Timer(pic, period=100)
        timer.running = True
        timer.tick(99)
        assert timer.fired == 0
        timer.tick(1)
        assert timer.fired == 1
        timer.tick(250)
        assert timer.fired == 3

    def test_not_running_no_fire(self):
        pic = InterruptController()
        timer = Timer(pic, period=10)
        timer.tick(100)
        assert timer.fired == 0

    def test_port_programming(self):
        ports = PortBus()
        pic = InterruptController()
        timer = Timer(pic)
        timer.attach(ports)
        ports.write(0x40, 50)
        ports.write(0x41, 1)
        assert timer.period == 50 and timer.running
        ports.write(0x41, 0)
        assert not timer.running

    def test_mmio_window(self):
        pic = InterruptController()
        timer = Timer(pic, period=7)
        assert timer.mmio_read(0, 4) == 7
        timer.mmio_write(4, 1, 4)
        assert timer.running


def _bus(size=64 * 1024):
    ram = PhysicalMemory(size)
    return ram, MemoryBus(ram)


class TestDMA:
    def test_copies_and_interrupts(self):
        ram, bus = _bus()
        pic = InterruptController()
        dma = DMAController(bus, pic)
        ram.write_bytes(0x100, b"hello dma")
        dma.source, dma.dest, dma.length = 0x100, 0x800, 9
        dma._control(1)
        assert dma.busy
        dma.tick(1)
        assert ram.read_bytes(0x800, 9) == b"hello dma"
        assert not dma.busy
        assert pic.pending_vector() == IRQ_BASE + DMAController.IRQ

    def test_large_copy_takes_multiple_ticks(self):
        ram, bus = _bus()
        pic = InterruptController()
        dma = DMAController(bus, pic)
        dma.source, dma.dest, dma.length = 0, 0x1000, 200
        dma._control(1)
        dma.tick(1)
        assert dma.busy  # 64 bytes per tick
        dma.tick(1)
        dma.tick(1)
        dma.tick(1)
        assert not dma.busy

    def test_writes_visible_to_observers(self):
        ram, bus = _bus()
        seen = []
        bus.store_observers.append(lambda a, s: seen.append(a))
        pic = InterruptController()
        dma = DMAController(bus, pic)
        dma.source, dma.dest, dma.length = 0, 0x2000, 4
        dma._control(1)
        dma.tick(1)
        assert len(seen) == 4

    def test_ports(self):
        ram, bus = _bus()
        ports = PortBus()
        pic = InterruptController()
        dma = DMAController(bus, pic)
        dma.attach(ports)
        ports.write(0x50, 0x10)
        ports.write(0x51, 0x20)
        ports.write(0x52, 8)
        ports.write(0x53, 1)
        assert ports.read(0x53) == 1  # busy
        dma.tick(1)
        assert ports.read(0x53) == 0


class TestDisk:
    def test_sector_read(self):
        ram, bus = _bus()
        pic = InterruptController()
        disk = Disk(bus, pic)
        disk.write_image(SECTOR_SIZE, b"\xabKERNEL")
        disk.sector, disk.dest, disk.count = 1, 0x3000, 1
        disk._control(1)
        for _ in range(10):
            disk.tick(1)
        assert not disk.busy
        assert ram.read_bytes(0x3000, 7) == b"\xabKERNEL"
        assert disk.reads_completed == 1

    def test_reads_beyond_image_are_zero(self):
        ram, bus = _bus()
        pic = InterruptController()
        disk = Disk(bus, pic, image=b"xy")
        disk.sector, disk.dest, disk.count = 0, 0x100, 1
        disk._control(1)
        for _ in range(10):
            disk.tick(1)
        assert ram.read_bytes(0x100, 2) == b"xy"
        assert ram.read8(0x102) == 0


class TestFramebuffer:
    def test_pixel_writes_and_checksum(self):
        fb = Framebuffer(256)
        fb.mmio_write(0, 0xFF, 1)
        fb.mmio_write(4, 0xAABBCCDD, 4)
        assert fb.pixel_writes == 2
        assert fb.mmio_read(4, 4) == 0xAABBCCDD
        assert fb.checksum() != 0

    def test_frame_flip_port(self):
        ports = PortBus()
        fb = Framebuffer(16)
        fb.attach(ports)
        ports.write(0xF0, 1)
        ports.write(0xF0, 1)
        assert fb.frames == 2
        assert ports.read(0xF0) == 2

    def test_out_of_range_write_ignored(self):
        fb = Framebuffer(8)
        fb.mmio_write(100, 1, 4)
        assert fb.checksum() == 0


class TestNetworkInterface:
    def _nic(self):
        ram, bus = _bus()
        pic = InterruptController()
        nic = NetworkInterface(bus, pic, seed=0x1234)
        return ram, bus, pic, nic

    def test_delivers_packet_and_interrupts(self):
        ram, bus, pic, nic = self._nic()
        nic.rx_addr = 0x400
        nic.period = 10
        nic._control(1)
        nic.tick(10)
        assert nic.packets_delivered == 1
        assert pic.pending_vector() == IRQ_BASE + NetworkInterface.IRQ
        words = nic.packet_words(0)
        got = [bus.read(0x400 + 4 * i, 4) for i in range(8)]
        assert got == words
        assert words[0] == 0  # header word carries the packet index

    def test_stop_and_wait_requires_rearm(self):
        ram, bus, pic, nic = self._nic()
        nic.rx_addr = 0x400
        nic.period = 5
        nic._control(1)
        nic.tick(5)
        assert nic.packets_delivered == 1
        nic.tick(500)  # un-armed: nothing may arrive
        assert nic.packets_delivered == 1
        nic._control(2)  # the ISR's re-arm
        nic.tick(5)
        assert nic.packets_delivered == 2

    def test_payloads_deterministic_per_index(self):
        _, _, _, nic = self._nic()
        other = NetworkInterface(_bus()[1], InterruptController(),
                                 seed=0x1234)
        for index in (0, 1, 7):
            assert nic.packet_words(index) == other.packet_words(index)
        assert nic.packet_words(0) != nic.packet_words(1)

    def test_stop_clears_armed(self):
        ram, bus, pic, nic = self._nic()
        nic.rx_addr = 0x400
        nic.period = 5
        nic._control(1)
        nic._control(0)
        nic.tick(500)
        assert nic.packets_delivered == 0

    def test_writes_visible_to_store_observers(self):
        ram, bus = _bus()
        seen = []
        bus.store_observers.append(lambda a, s: seen.append(a))
        nic = NetworkInterface(bus, InterruptController())
        nic.rx_addr = 0x800
        nic.period = 1
        nic._control(1)
        nic.tick(1)
        assert len(seen) == NetworkInterface.PACKET_WORDS
        assert seen[0] == 0x800

    def test_ports(self):
        ram, bus = _bus()
        ports = PortBus()
        nic = NetworkInterface(bus, InterruptController())
        nic.attach(ports)
        ports.write(0x70, 0x900)
        ports.write(0x71, 3)
        ports.write(0x72, 1)
        assert ports.read(0x70) == 0x900
        assert ports.read(0x71) == 3
        assert ports.read(0x72) == 0b11  # enabled + armed
        nic.tick(3)
        assert ports.read(0x73) == 1
