"""Direct unit coverage for the two recovery paths in CMSSystem that
were previously only reached through whole workloads:

* ``_handle_self_check_fail`` — §3.6.3 self-checking translations:
  case (a) the region patched itself (memory still matches the
  snapshot, translation survives), case (b) foreign code rewrote the
  region (translation retired).
* ``_recovery_interpret`` — §3.2 speculative-vs-genuine fault triage:
  re-run the rolled-back region in the interpreter and report whether
  the guest exception recurs.
"""

from __future__ import annotations

import pytest

from repro import CMSConfig, CodeMorphingSystem, Machine
from repro.isa.assembler import assemble
from repro.isa.registers import REG_NAMES


def _set_reg(state, name: str, value: int) -> None:
    state.set_reg(REG_NAMES.index(name), value)

FAST = CMSConfig(translation_threshold=3, fault_threshold=2,
                 force_self_check=True)

LOOP_PROGRAM = """
.org 0x1000
start:
    mov esp, 0x7F000
    mov eax, 0
    storei [eax+0], de_handler
    mov ebx, 1
    mov ecx, 8
loop:
    mov eax, 100
    mov edx, 0
    div ebx
    dec ecx
    jnz loop
    cli
    hlt
de_handler:
    pop eax
    add eax, 2
    push eax
    iret
"""


def _translated_system(config: CMSConfig = FAST):
    """Run LOOP_PROGRAM to completion and return (system, symbols) with
    the loop region hot in the translation cache."""
    program = assemble(LOOP_PROGRAM)
    machine = Machine()
    machine.load_program(program)
    system = CodeMorphingSystem(machine, config)
    result = system.run(program.entry, max_instructions=100_000)
    assert result.halted
    translation = system.tcache.lookup(program.symbols["loop"])
    assert translation is not None and translation.valid
    return system, program.symbols


class TestHandleSelfCheckFail:
    def test_self_write_keeps_translation_and_interprets(self):
        # Case (a): memory still matches the snapshot (the region's own
        # rolled-back store was discarded) — the translation must stay
        # valid and the interpreter must make precise forward progress.
        system, symbols = _translated_system()
        translation = system.tcache.lookup(symbols["loop"])
        system.state.eip = symbols["loop"]
        _set_reg(system.state, "ecx", 1)
        _set_reg(system.state, "ebx", 1)
        before = system.stats.interp_instructions
        system._handle_self_check_fail(translation)
        assert translation.valid
        assert system.stats.interp_instructions == before + 1
        assert system.state.eip != symbols["loop"]  # one instruction in

    def test_foreign_rewrite_retires_translation(self):
        # Case (b): the bytes genuinely changed under the translation.
        # With groups enabled the stale version is retired out of the
        # tcache into its translation group (§3.6.5).
        system, symbols = _translated_system()
        translation = system.tcache.lookup(symbols["loop"])
        start, length = translation.code_ranges[0]
        # Rewrite a code byte behind the bus (no store observers), the
        # way a stale snapshot looks to the checker.  The *last* byte
        # of the range, so the interpreter fallback still starts on an
        # intact instruction.
        system.machine.ram.write8(
            start + length - 1,
            system.machine.ram.read8(start + length - 1) ^ 0xFF,
        )
        system.state.eip = symbols["loop"]
        _set_reg(system.state, "ecx", 1)
        _set_reg(system.state, "ebx", 1)
        invalidations = system.stats.smc_invalidations
        system._handle_self_check_fail(translation)
        assert system.tcache.lookup(symbols["loop"]) is None
        assert system.stats.smc_invalidations == invalidations + 1
        assert system.groups.has_group(symbols["loop"])

    def test_foreign_rewrite_invalidates_without_groups(self):
        # Same case (b) with translation groups disabled: the stale
        # version is invalidated outright.
        from dataclasses import replace

        system, symbols = _translated_system(
            replace(FAST, translation_groups=False)
        )
        translation = system.tcache.lookup(symbols["loop"])
        start, length = translation.code_ranges[0]
        system.machine.ram.write8(
            start + length - 1,
            system.machine.ram.read8(start + length - 1) ^ 0xFF,
        )
        system.state.eip = symbols["loop"]
        _set_reg(system.state, "ecx", 1)
        _set_reg(system.state, "ebx", 1)
        system._handle_self_check_fail(translation)
        assert not translation.valid

    def test_retired_sibling_reactivates_when_bytes_flip_back(self):
        # §3.6.5 alternating-versions scenario: the region is rewritten
        # (v1 retired into its group), then rewritten *back* — the
        # retired version must come back from the group instead of
        # being retranslated.
        system, symbols = _translated_system()
        v1 = system.tcache.lookup(symbols["loop"])
        start, length = v1.code_ranges[0]
        original = system.machine.ram.read8(start + length - 1)
        system.machine.ram.write8(start + length - 1, original ^ 0xFF)
        system.state.eip = symbols["loop"]
        _set_reg(system.state, "ecx", 1)
        _set_reg(system.state, "ebx", 1)
        system._handle_self_check_fail(v1)  # case (b): retired
        assert system.tcache.lookup(symbols["loop"]) is None
        system.machine.ram.write8(start + length - 1, original)
        reactivated = system.smc.try_group_reactivation(symbols["loop"])
        assert reactivated is v1
        assert reactivated.valid

    def test_foreign_rewrite_falls_back_to_interpreter(self):
        # With no group sibling to reactivate, case (b) must still make
        # interpreter progress instead of spinning on the dead entry.
        system, symbols = _translated_system()
        translation = system.tcache.lookup(symbols["loop"])
        start, _ = translation.code_ranges[0]
        system.machine.ram.write8(start, system.machine.ram.read8(start) ^ 0xFF)
        system.state.eip = symbols["loop"]
        _set_reg(system.state, "ecx", 1)
        _set_reg(system.state, "ebx", 1)
        before = system.stats.interp_instructions
        system._handle_self_check_fail(translation)
        assert system.stats.interp_instructions == before + 1


class TestRecoveryInterpret:
    def test_eip_outside_region_returns_false(self):
        system, symbols = _translated_system()
        translation = system.tcache.lookup(symbols["loop"])
        system.state.eip = 0x3000  # nowhere near the region
        steps_before = system.stats.recovery_interp_instructions
        assert system._recovery_interpret(None, translation) is False
        assert system.stats.recovery_interp_instructions == steps_before

    def test_genuine_fault_recurs_and_is_delivered(self):
        # ebx = 0 makes the region's div genuinely fault: the recovery
        # interpreter must hit the same exception and deliver it
        # precisely (the paper's "genuine fault" outcome).
        system, symbols = _translated_system()
        translation = system.tcache.lookup(symbols["loop"])
        system.state.eip = symbols["loop"]
        _set_reg(system.state, "ebx", 0)
        _set_reg(system.state, "ecx", 4)
        delivered = system.interpreter.exceptions_delivered
        assert system._recovery_interpret(None, translation) is True
        assert system.interpreter.exceptions_delivered == delivered + 1

    def test_clean_loop_pass_returns_false(self):
        # ebx = 1: the pass through the loop body re-executes cleanly
        # and control returns to the entry — a speculation artifact,
        # not a genuine fault.
        system, symbols = _translated_system()
        translation = system.tcache.lookup(symbols["loop"])
        system.state.eip = symbols["loop"]
        _set_reg(system.state, "ebx", 1)
        _set_reg(system.state, "ecx", 4)
        steps_before = system.stats.recovery_interp_instructions
        assert system._recovery_interpret(None, translation) is False
        assert system.stats.recovery_interp_instructions > steps_before
        assert system.state.eip == symbols["loop"]

    def test_cap_bounds_runaway_recovery(self):
        # A tiny cap must stop recovery even though the region would
        # eventually fault — the dispatcher then takes the slow path.
        config = CMSConfig(translation_threshold=3, fault_threshold=2,
                           recovery_interp_cap=2)
        system, symbols = _translated_system(config)
        translation = system.tcache.lookup(symbols["loop"])
        system.state.eip = symbols["loop"]
        _set_reg(system.state, "ebx", 0)  # would fault at step 3
        _set_reg(system.state, "ecx", 4)
        assert system._recovery_interpret(None, translation) is False
