"""Tests for indirect-exit inline caching and generational tcache GC."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro import CMSConfig
from repro.cache.tcache import TranslationCache

from conftest import assert_equivalent, run_cms
from test_tcache import make_translation

FAST = CMSConfig(translation_threshold=4)

# A call-heavy program: every call/ret is an indirect exit, so inline
# caches are the only way these regions chain.
CALL_HEAVY = """
start:
    mov esp, 0x8000
    mov esi, 0
    mov ecx, 0
outer:
    call work_a
    call work_b
    inc ecx
    cmp ecx, 150
    jne outer
    cli
    hlt
work_a:
    add esi, 3
    rol esi, 1
    ret
work_b:
    xor esi, 0x5A
    add esi, 0x9E3779B9
    ret
"""

# A dispatch table through an indirect jump: the inline cache must cope
# with a *changing* target (monomorphic cache misses and retargets).
POLYMORPHIC = """
start:
    mov esp, 0x8000
    mov esi, 0
    mov ecx, 0
disp:
    mov eax, ecx
    and eax, 1
    loadx eax, [ebx+eax*4+table]
    jmp eax
h0:
    add esi, 1
    jmp next
h1:
    xor esi, 0x77
    rol esi, 3
next:
    inc ecx
    cmp ecx, 200
    jne disp
    cli
    hlt
table:
    .word h0, h1
"""


class TestIndirectChaining:
    def test_call_heavy_equivalence_and_chaining(self):
        both = assert_equivalent(CALL_HEAVY, config=FAST)
        stats = both.cms_system.stats
        assert stats.indirect_chains >= 1, "no inline caches installed"
        assert stats.chains_followed >= 50, (
            f"indirect chains barely followed: {stats.chains_followed}"
        )

    def test_polymorphic_target_still_correct(self):
        both = assert_equivalent(POLYMORPHIC, config=FAST)
        stats = both.cms_system.stats
        # The cache keeps retargeting between h0 and h1: installs pile
        # up, and execution stays correct throughout.
        assert stats.indirect_chains >= 2

    def test_inline_cache_guard_blocks_wrong_target(self):
        # Under alternating targets, every chained follow must still
        # reach the architecturally correct handler; equivalence above
        # proves it, and here the dispatcher stats show both handlers
        # were entered many times.
        system, _result = run_cms(POLYMORPHIC, config=FAST)
        entries = {t.entry_eip: t.entries
                   for t in system.tcache.translations()}
        hot = [count for count in entries.values() if count > 10]
        assert len(hot) >= 2, "both handlers should run hot"

    def test_chain_dispatch_reduction(self):
        # With inline caches, dispatcher round-trips drop.
        system, _ = run_cms(CALL_HEAVY, config=FAST)
        stats = system.stats
        assert stats.chains_followed > stats.dispatches * 0.5


class TestGenerationalGC:
    def test_evict_cold_keeps_hot(self):
        cache = TranslationCache(capacity_molecules=20)
        hot = make_translation(entry=0x1000, molecules=8)
        hot.entries = 100
        cold = make_translation(entry=0x2000, molecules=8)
        cold.entries = 1
        cache.insert(hot)
        cache.insert(cold)
        # Next insert exceeds capacity: the cold one is evicted.
        third = make_translation(entry=0x3000, molecules=8)
        cache.insert(third)
        assert cache.lookup(0x1000) is hot
        assert cache.lookup(0x2000) is None
        assert cache.lookup(0x3000) is third
        assert cache.evictions >= 1
        assert cache.flushes == 0

    def test_on_evict_callback(self):
        cache = TranslationCache(capacity_molecules=20)
        victims_seen = []
        cache.on_evict = victims_seen.extend
        a = make_translation(entry=0x1000, molecules=8)
        b = make_translation(entry=0x2000, molecules=8)
        cache.insert(a)
        cache.insert(b)
        cache.insert(make_translation(entry=0x3000, molecules=8))
        assert victims_seen

    def test_oversized_translation_falls_back_to_flush(self):
        cache = TranslationCache(capacity_molecules=10)
        cache.insert(make_translation(entry=0x1000, molecules=8))
        cache.insert(make_translation(entry=0x2000, molecules=9))
        assert cache.flushes >= 0  # eviction may suffice
        assert cache.lookup(0x2000) is not None

    def test_eviction_unchains(self):
        cache = TranslationCache(capacity_molecules=24)
        hot = make_translation(entry=0x1000, molecules=8)
        hot.entries = 50
        cold = make_translation(entry=0x2000, molecules=8)
        cache.insert(hot)
        cache.insert(cold)
        cache.chain(hot, hot.exit_atoms[0], cold)
        cache.insert(make_translation(entry=0x3000, molecules=10))
        if cache.lookup(0x2000) is None:  # cold was evicted
            assert hot.exit_atoms[0].chained_translation is None

    def test_system_equivalence_under_gc_pressure(self):
        config = replace(FAST, tcache_capacity_molecules=40)
        both = assert_equivalent("""
        start:
            mov esp, 0x8000
            mov esi, 0
            mov ecx, 0
        outer:
            call f1
            call f2
            call f3
            call f4
            inc ecx
            cmp ecx, 180
            jne outer
            cli
            hlt
        f1:
            add esi, 1
            ret
        f2:
            xor esi, 0x3C
            ret
        f3:
            rol esi, 2
            ret
        f4:
            add esi, 0x9E3779B9
            ret
        """, config=config)
        tcache = both.cms_system.tcache
        assert tcache.evictions >= 1 or tcache.flushes >= 1
