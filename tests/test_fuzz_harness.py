"""Tier-1 tests for the differential fuzzing subsystem itself.

These keep the harness honest: programs must be deterministic in their
seed, must assemble and halt under the reference, the oracle must pass
on a small clean campaign, the injector must fire on schedule, the
corpus format must round-trip — and, most importantly, a deliberately
broken CMS dial must be *caught* and *shrunk* to a tiny reproducer
(the harness's whole reason to exist).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import CMSConfig, CodeMorphingSystem, Machine
from repro.fuzz import (FaultInjector, InjectionEvent, InjectionPlan,
                        entry_from_program, generate, load_corpus,
                        parse_entry, run_campaign, run_differential,
                        shrink_program, variant_by_name, write_entry)
from repro.fuzz.oracle import default_matrix, execute


class TestGenerator:
    def test_same_seed_same_program(self):
        assert generate(7).source == generate(7).source
        assert generate(7, inject=True).plan == generate(7, inject=True).plan

    def test_different_seeds_differ(self):
        assert generate(1).source != generate(2).source

    @pytest.mark.parametrize("seed", range(5))
    def test_programs_assemble_and_halt_on_reference(self, seed):
        program = generate(seed)
        outcome = execute(program, CMSConfig().interpreter_only())
        assert outcome.halted

    def test_injected_program_declares_stack_mask(self):
        program = generate(3, inject=True)
        assert program.plan is not None
        assert program.plan.expected_interrupts >= 1
        assert program.ram_masks()  # stack scratch region excluded
        assert generate(3).ram_masks() == []

    def test_body_instruction_count_ignores_labels(self):
        program = generate(0).with_body(
            ("    jz skip_0\n    add eax, ebx\nskip_0:",)
        )
        assert program.body_instruction_count() == 2


class TestOracle:
    def test_small_clean_campaign_has_no_mismatches(self):
        result = run_campaign(budget=8, seed=0,
                              variants=default_matrix()[:2], inject_every=0)
        assert result.ok
        assert result.trials == 8

    def test_injected_program_is_equivalent(self):
        program = generate(1000, inject=True)
        assert run_differential(program, default_matrix()[:2]) == []

    def test_variant_lookup(self):
        assert variant_by_name("full").name == "full"
        with pytest.raises(KeyError):
            variant_by_name("nope")


class TestInjector:
    def test_events_fire_at_device_time(self):
        machine = Machine()
        plan = InjectionPlan((
            InjectionEvent(kind="irq", at=10, line=3),
            InjectionEvent(kind="irq", at=30, line=4),
        ))
        injector = FaultInjector(machine, plan)
        machine.tick(9)
        assert injector.fired == 0
        machine.tick(1)
        assert injector.fired == 1
        machine.tick(25)
        assert injector.fired == 2
        assert injector.exhausted

    def test_dma_event_programs_engine(self):
        machine = Machine()
        plan = InjectionPlan((
            InjectionEvent(kind="dma", at=5, source=0x1000, dest=0x2000,
                           length=64),
        ))
        injector = FaultInjector(machine, plan)
        machine.tick(5)
        assert injector.fired == 1
        assert machine.dma.busy
        machine.tick(10)
        assert machine.dma.transfers_completed == 1

    def test_busy_dma_start_is_retried_not_dropped(self):
        machine = Machine()
        plan = InjectionPlan((
            InjectionEvent(kind="dma", at=5, source=0x1000, dest=0x2000,
                           length=512),
            InjectionEvent(kind="dma", at=6, source=0x1000, dest=0x3000,
                           length=64),
        ))
        injector = FaultInjector(machine, plan)
        machine.tick(6)
        assert injector.fired == 1 and injector.dma_retries == 1
        # Drain the first transfer (the engine moves at most 64 bytes
        # per tick call) and let the deterministic retry fire.
        for _ in range(40):
            machine.tick(10)
        assert injector.fired == 2
        assert machine.dma.transfers_completed == 2

    def test_plan_round_trips_through_json(self):
        plan = generate(42, inject=True).plan
        assert InjectionPlan.from_json(plan.to_json()) == plan


class TestCorpus:
    def test_entry_round_trips(self, tmp_path):
        program = generate(9, inject=True)
        entry = entry_from_program("sample", program, variant="full")
        path = write_entry(tmp_path, entry)
        loaded = load_corpus(tmp_path)
        assert len(loaded) == 1
        assert loaded[0].source == program.source
        assert loaded[0].seed == 9
        assert loaded[0].variant == "full"
        assert loaded[0].plan == program.plan
        assert loaded[0].ram_masks() == program.ram_masks()
        assert path.suffix == ".t86"

    def test_plain_entry_has_no_plan(self, tmp_path):
        program = generate(9)
        write_entry(tmp_path, entry_from_program("plain", program))
        loaded = load_corpus(tmp_path)[0]
        assert loaded.plan is None
        assert loaded.ram_masks() == []

    def test_parse_tolerates_missing_header(self):
        entry = parse_entry("raw", "start:\n    hlt\n")
        assert entry.source == "start:\n    hlt\n"
        assert entry.seed == 0 and entry.plan is None


def _break_store_forwarding(system: CodeMorphingSystem) -> None:
    """The deliberately-broken dial: loads never observe uncommitted
    stores (store-to-load forwarding disabled).  Only CMS is affected —
    the reference interpreter writes straight through the bus."""
    system.cpu.store_buffer.forward = \
        lambda paddr, size, memory_value: memory_value


class TestBrokenDialIsCaught:
    def test_mutation_found_shrunk_and_frozen(self, tmp_path):
        variant = variant_by_name("full")
        mismatch = None
        for index in range(40):
            program = generate(5000 + index)
            found = run_differential(program, (variant,),
                                     cms_factory=_break_store_forwarding)
            if found:
                mismatch = found[0]
                break
        assert mismatch is not None, \
            "broken store forwarding escaped 40 fuzz programs"
        assert mismatch.diffs

        def is_failing(candidate):
            return bool(run_differential(candidate, (variant,),
                                         cms_factory=_break_store_forwarding))

        shrunk = shrink_program(mismatch.program, is_failing)
        assert shrunk.body_instruction_count() <= 10
        # The shrunk program still witnesses the bug, and is clean on
        # the unbroken system.
        assert is_failing(shrunk)
        assert run_differential(shrunk, (variant,)) == []
        # Freeze and reload as a corpus seed.
        entry = entry_from_program("broken_dial", shrunk,
                                   variant=variant.name)
        write_entry(tmp_path, entry)
        replayed = load_corpus(tmp_path)[0]
        assert replayed.source == shrunk.source
