"""Unit tests for the EFLAGS reference helpers."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.isa import flags as fl

U32 = st.integers(min_value=0, max_value=0xFFFFFFFF)


class TestParity:
    def test_even_parity_of_zero(self):
        assert fl.parity(0) == 1

    def test_single_bit_is_odd(self):
        assert fl.parity(1) == 0
        assert fl.parity(0x80) == 0

    def test_two_bits_even(self):
        assert fl.parity(0x03) == 1
        assert fl.parity(0x81) == 1

    def test_only_low_byte_counts(self):
        assert fl.parity(0xFFFFFF00) == fl.parity(0)

    @given(U32)
    def test_matches_bin_count(self, value):
        expected = 1 if bin(value & 0xFF).count("1") % 2 == 0 else 0
        assert fl.parity(value) == expected


class TestAdd:
    def test_simple_add_no_flags(self):
        result, flags = fl.flags_add(1, 2)
        assert result == 3
        assert not flags & (fl.CF | fl.ZF | fl.SF | fl.OF)

    def test_carry_out(self):
        result, flags = fl.flags_add(0xFFFFFFFF, 1)
        assert result == 0
        assert flags & fl.CF
        assert flags & fl.ZF

    def test_signed_overflow_positive(self):
        result, flags = fl.flags_add(0x7FFFFFFF, 1)
        assert result == 0x80000000
        assert flags & fl.OF
        assert flags & fl.SF
        assert not flags & fl.CF

    def test_signed_overflow_negative(self):
        _, flags = fl.flags_add(0x80000000, 0x80000000)
        assert flags & fl.OF
        assert flags & fl.CF

    def test_carry_in(self):
        result, flags = fl.flags_add(0xFFFFFFFF, 0, carry_in=1)
        assert result == 0
        assert flags & fl.CF

    @given(U32, U32)
    def test_result_is_mod_2_32(self, a, b):
        result, _ = fl.flags_add(a, b)
        assert result == (a + b) & 0xFFFFFFFF

    @given(U32, U32)
    def test_cf_is_unsigned_overflow(self, a, b):
        _, flags = fl.flags_add(a, b)
        assert bool(flags & fl.CF) == (a + b > 0xFFFFFFFF)


class TestSub:
    def test_borrow(self):
        result, flags = fl.flags_sub(0, 1)
        assert result == 0xFFFFFFFF
        assert flags & fl.CF
        assert flags & fl.SF

    def test_equal_sets_zf(self):
        _, flags = fl.flags_sub(7, 7)
        assert flags & fl.ZF
        assert not flags & fl.CF

    def test_signed_overflow(self):
        _, flags = fl.flags_sub(0x80000000, 1)
        assert flags & fl.OF

    @given(U32, U32)
    def test_cf_is_unsigned_borrow(self, a, b):
        _, flags = fl.flags_sub(a, b)
        assert bool(flags & fl.CF) == (a < b)

    @given(U32, U32)
    def test_zf_iff_equal(self, a, b):
        _, flags = fl.flags_sub(a, b)
        assert bool(flags & fl.ZF) == (a == b)


class TestLogic:
    def test_clears_cf_of(self):
        _, flags = fl.flags_logic(0xFFFFFFFF)
        assert not flags & fl.CF
        assert not flags & fl.OF
        assert flags & fl.SF

    def test_zero_result(self):
        _, flags = fl.flags_logic(0)
        assert flags & fl.ZF


class TestIncDec:
    def test_inc_preserves_cf_mask(self):
        _, _, mask = fl.flags_inc(0)
        assert not mask & fl.CF

    def test_inc_overflow_at_sign_boundary(self):
        result, flags, _ = fl.flags_inc(0x7FFFFFFF)
        assert result == 0x80000000
        assert flags & fl.OF

    def test_dec_overflow(self):
        result, flags, _ = fl.flags_dec(0x80000000)
        assert result == 0x7FFFFFFF
        assert flags & fl.OF

    def test_dec_to_zero(self):
        result, flags, _ = fl.flags_dec(1)
        assert result == 0
        assert flags & fl.ZF


class TestShifts:
    def test_shl_carry(self):
        result, flags, mask = fl.flags_shl(0x80000000, 1)
        assert result == 0
        assert flags & fl.CF
        assert flags & fl.ZF
        assert mask == fl.ARITH_FLAGS

    def test_shl_zero_count_defines_nothing(self):
        result, flags, mask = fl.flags_shl(123, 0)
        assert result == 123
        assert mask == 0

    def test_shl_count_masked(self):
        result, _, mask = fl.flags_shl(1, 32)
        assert result == 1  # count 32 & 31 == 0
        assert mask == 0

    def test_shr_carry_from_lsb(self):
        result, flags, _ = fl.flags_shr(0b11, 1)
        assert result == 1
        assert flags & fl.CF

    def test_sar_preserves_sign(self):
        result, _, _ = fl.flags_sar(0x80000000, 4)
        assert result == 0xF8000000

    def test_sar_positive(self):
        result, _, _ = fl.flags_sar(0x40000000, 4)
        assert result == 0x04000000

    def test_rol_wraps(self):
        result, flags, mask = fl.flags_rol(0x80000001, 1)
        assert result == 0x00000003
        assert flags & fl.CF
        assert mask == (fl.CF | fl.OF)

    def test_ror_wraps(self):
        result, flags, _ = fl.flags_ror(1, 1)
        assert result == 0x80000000
        assert flags & fl.CF

    @given(U32, st.integers(min_value=1, max_value=31))
    def test_shl_matches_python(self, a, count):
        result, _, _ = fl.flags_shl(a, count)
        assert result == (a << count) & 0xFFFFFFFF

    @given(U32, st.integers(min_value=1, max_value=31))
    def test_shr_matches_python(self, a, count):
        result, _, _ = fl.flags_shr(a, count)
        assert result == a >> count


class TestMultiply:
    def test_mul_flags_set_when_high_nonzero(self):
        flags = fl.flags_mul(low=0, high=1)
        assert flags & fl.CF and flags & fl.OF

    def test_mul_flags_clear_when_fits(self):
        flags = fl.flags_mul(low=100, high=0)
        assert not flags & fl.CF

    def test_imul_overflow(self):
        full = 0x7FFFFFFF * 2
        flags = fl.flags_imul(full & 0xFFFFFFFF, full)
        assert flags & fl.OF

    def test_imul_negative_fits(self):
        full = -5
        flags = fl.flags_imul(full & 0xFFFFFFFF, full)
        assert not flags & fl.OF


class TestPacking:
    def test_format_flags(self):
        text = fl.format_flags(fl.CF | fl.ZF)
        assert "CF" in text and "ZF" in text

    def test_pzs_sign(self):
        assert fl.pzs_flags(0x80000000) & fl.SF
        assert fl.pzs_flags(0) & fl.ZF
