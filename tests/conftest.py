"""Shared test helpers.

The central correctness instrument is ``run_both``: execute the same
program on the pure interpreter (the reference) and under full CMS, and
compare architectural outcomes.  For deterministic workloads (no
asynchronous interrupts or DMA races) the comparison is exact: final
registers, flags, console output, and RAM contents.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass

import pytest

from repro import CMSConfig, CodeMorphingSystem, Machine, run_reference
from repro.machine import MachineConfig

# ----------------------------------------------------------------------
# Reproducible randomness: every random-using test (hypothesis property
# tests and the `fuzz_seed` fixture) derives its seed from one session
# seed, settable with `--fuzz-seed N` and printed in the header and on
# every failure.  Without the option a fresh seed is drawn per session,
# so repeated CI runs still explore new ground — reproducibly.
# ----------------------------------------------------------------------


def pytest_addoption(parser):
    parser.addoption(
        "--fuzz-seed", type=int, default=None,
        help="session seed for property tests and fuzz fixtures "
             "(default: random, printed in the header)",
    )


def pytest_configure(config):
    seed = config.getoption("--fuzz-seed")
    if seed is None:
        seed = random.SystemRandom().randrange(2**32)
    config._fuzz_session_seed = seed


def pytest_report_header(config):
    return (f"fuzz seed: {config._fuzz_session_seed} "
            f"(reproduce with --fuzz-seed={config._fuzz_session_seed})")


def _item_seed(item) -> int:
    """Per-test seed: stable across runs for a fixed session seed, but
    distinct between tests so they don't all walk the same stream."""
    return (item.config._fuzz_session_seed
            ^ zlib.crc32(item.nodeid.encode())) & 0xFFFFFFFF


@pytest.hookimpl(hookwrapper=True)
def pytest_collection_modifyitems(config, items):
    yield
    try:
        import hypothesis
    except ImportError:
        return
    for item in items:
        func = getattr(item, "obj", None)
        if func is None or not hasattr(func, "hypothesis"):
            continue
        # Bound methods reject attribute writes; seed the function.
        target = getattr(func, "__func__", func)
        hypothesis.seed(_item_seed(item))(target)


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    if report.when == "call" and report.failed:
        seed = item.config._fuzz_session_seed
        report.sections.append((
            "fuzz seed",
            f"session seed {seed}; rerun with "
            f"`--fuzz-seed={seed}` to reproduce",
        ))


@pytest.fixture
def fuzz_seed(request) -> int:
    """A per-test seed derived from the session ``--fuzz-seed``."""
    return _item_seed(request.node)


@dataclass
class BothResults:
    ref_system: CodeMorphingSystem
    cms_system: CodeMorphingSystem
    ref_result: object
    cms_result: object

    @property
    def ref_machine(self) -> Machine:
        return self.ref_system.machine

    @property
    def cms_machine(self) -> Machine:
        return self.cms_system.machine


def build_machine(machine_config: MachineConfig | None = None) -> Machine:
    return Machine(machine_config)


def run_cms(source: str, config: CMSConfig | None = None,
            machine_config: MachineConfig | None = None,
            max_instructions: int = 5_000_000):
    machine = Machine(machine_config)
    entry = machine.load_source(source)
    system = CodeMorphingSystem(machine, config or CMSConfig())
    result = system.run(entry, max_instructions=max_instructions)
    return system, result


def run_both(source: str, config: CMSConfig | None = None,
             machine_config: MachineConfig | None = None,
             max_instructions: int = 5_000_000) -> BothResults:
    ref_machine = Machine(machine_config)
    ref_entry = ref_machine.load_source(source)
    ref_system = CodeMorphingSystem(
        ref_machine, (config or CMSConfig()).interpreter_only()
    )
    ref_result = ref_system.run(ref_entry, max_instructions=max_instructions)

    cms_machine = Machine(machine_config)
    cms_entry = cms_machine.load_source(source)
    cms_system = CodeMorphingSystem(cms_machine, config or CMSConfig())
    cms_result = cms_system.run(cms_entry, max_instructions=max_instructions)
    return BothResults(ref_system, cms_system, ref_result, cms_result)


def assert_equivalent(source: str, config: CMSConfig | None = None,
                      machine_config: MachineConfig | None = None,
                      max_instructions: int = 5_000_000,
                      compare_ram: bool = True) -> BothResults:
    """Run both engines and assert exact architectural equivalence."""
    both = run_both(source, config, machine_config, max_instructions)
    assert both.ref_result.halted, "reference run did not halt"
    assert both.cms_result.halted, "CMS run did not halt"
    assert both.cms_result.console_output == \
        both.ref_result.console_output, "console output diverged"
    ref_state = both.ref_system.state.snapshot()
    cms_state = both.cms_system.state.snapshot()
    assert cms_state == ref_state, (
        f"architectural state diverged:\n"
        f"  ref {both.ref_system.state.describe()}\n"
        f"  cms {both.cms_system.state.describe()}"
    )
    if compare_ram:
        ref_ram = both.ref_machine.ram.read_bytes(0, both.ref_machine.ram.size)
        cms_ram = both.cms_machine.ram.read_bytes(0, both.cms_machine.ram.size)
        if ref_ram != cms_ram:
            diffs = [i for i in range(len(ref_ram))
                     if ref_ram[i] != cms_ram[i]][:16]
            raise AssertionError(f"RAM diverged at {[hex(d) for d in diffs]}")
    return both


@pytest.fixture
def machine() -> Machine:
    return Machine()
