"""Self-modifying-code integration tests (paper §3.6).

Each test runs a guest program that modifies (or writes near) its own
code, asserts exact architectural equivalence with the reference
interpreter, and checks that the expected CMS adaptation mechanism
actually engaged.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro import CMSConfig

from conftest import assert_equivalent, run_both, run_cms

FAST = CMSConfig(translation_threshold=4, fault_threshold=2)


# A self-modifying kernel in the style the paper attributes to Doom and
# Adobe Premiere: the immediate field of an instruction inside an inner
# loop is patched just before entering that loop.
STYLIZED_SMC_PROGRAM = """
start:
    mov edi, 0            ; frame counter
    mov esi, 0            ; checksum
frame:
    mov eax, edi
    imul eax, 17
    add eax, 0x01010101
    mov ebx, patch_site + 2   ; the imm32 field of the add below
    store [ebx], eax          ; self-modifying write
    mov ecx, 0
inner:
patch_site:
    add esi, 0x11111111       ; immediate is rewritten every frame
    rol esi, 1
    inc ecx
    cmp ecx, 30
    jl inner
    inc edi
    cmp edi, 40
    jl frame
    cli
    hlt
"""


class TestStylizedSMC:
    def test_equivalence(self):
        both = assert_equivalent(STYLIZED_SMC_PROGRAM, config=FAST)
        stats = both.cms_system.stats
        assert stats.smc_invalidations >= 1
        assert stats.protection_faults >= 1

    def test_stylized_policy_adopted(self):
        both = assert_equivalent(STYLIZED_SMC_PROGRAM, config=FAST)
        controller = both.cms_system.controller
        stylized_entries = [
            entry for entry in controller._policies
            if controller.policy_for(entry).stylized_imm_addrs
        ]
        assert stylized_entries, "no region adopted stylized-SMC reloading"

    def test_stylized_translation_survives_patches(self):
        # Once stylized translations are in place, further patches must
        # not invalidate them: the hot loop stays in the tcache.
        both = assert_equivalent(STYLIZED_SMC_PROGRAM, config=FAST)
        stats = both.cms_system.stats
        # Far fewer translations than frames: the steady state reuses
        # the stylized translation across patches.
        assert stats.translations_made < 35

    def test_stylized_disabled_still_correct(self):
        config = replace(FAST, stylized_smc=False)
        assert_equivalent(STYLIZED_SMC_PROGRAM, config=config)


# Mixed code and data on one page: a loop that stores to a data word on
# the same page (different granule) as its own code — the Windows/9X
# driver pattern that fine-grain protection exists for (§3.6.1).
MIXED_PAGE_PROGRAM = """
.org 0x2000
start:
    mov ebx, scratch
    mov ecx, 0
    mov esi, 0
loop:
    mov eax, ecx
    imul eax, 3
    store [ebx], eax       ; data write onto the code page
    load edx, [ebx]
    add esi, edx
    inc ecx
    cmp ecx, 400
    jne loop
    cli
    hlt
.org 0x2800                 ; same page as the code, far granule
scratch:
    .word 0
"""


class TestFineGrainProtection:
    def test_equivalence_with_fine_grain(self):
        both = assert_equivalent(MIXED_PAGE_PROGRAM, config=FAST)
        protection = both.cms_system.protection
        # The data stores were allowed through after one miss service.
        assert protection.fg_allowed_stores > 100
        assert both.cms_system.stats.fg_miss_services >= 1

    def test_equivalence_without_fine_grain(self):
        config = replace(FAST, fine_grain_protection=False)
        assert_equivalent(MIXED_PAGE_PROGRAM, config=config)

    def test_fine_grain_reduces_faults(self):
        _, with_fg = run_cms(MIXED_PAGE_PROGRAM, config=FAST)
        system_fg, _ = run_cms(MIXED_PAGE_PROGRAM, config=FAST)
        system_nofg, _ = run_cms(
            MIXED_PAGE_PROGRAM,
            config=replace(FAST, fine_grain_protection=False),
        )
        faults_fg = system_fg.protection.protection_faults
        faults_nofg = system_nofg.protection.protection_faults
        assert faults_nofg > faults_fg * 2, (
            f"fine-grain should cut faults: {faults_fg} vs {faults_nofg}"
        )


# Data stored in the *same granule* as code: fine-grain protection alone
# cannot help (the granule legitimately contains code), so CMS escalates
# to a self-revalidating translation (§3.6.2).
SAME_GRANULE_PROGRAM = """
.org 0x2000
scratch:                    ; same 64-byte granule as the loop code below
    .word 0
.entry start
start:
    mov ebx, scratch
    mov edx, 0
    mov esi, 0
outer:
    mov ecx, 0
loop:
    store [ebx], ecx       ; store lands in the granule holding 'loop'
    load eax, [ebx]
    add esi, eax
    inc ecx
    cmp ecx, 60
    jne loop
    inc edx
    cmp edx, 20
    jne outer
    cli
    hlt
"""


class TestSelfRevalidation:
    def test_equivalence(self):
        both = assert_equivalent(SAME_GRANULE_PROGRAM, config=FAST)
        stats = both.cms_system.stats
        assert stats.protection_faults >= 1

    def test_revalidation_arms_and_passes(self):
        both = assert_equivalent(SAME_GRANULE_PROGRAM, config=FAST)
        stats = both.cms_system.stats
        assert stats.revalidations_armed >= 1
        assert stats.revalidations_passed >= 1

    def test_without_revalidation_still_correct(self):
        config = replace(FAST, self_revalidation=False)
        both = assert_equivalent(SAME_GRANULE_PROGRAM, config=config)
        assert both.cms_system.stats.revalidations_armed == 0

    def test_revalidation_cheaper_than_none(self):
        system_with, _ = run_cms(SAME_GRANULE_PROGRAM, config=FAST)
        system_without, _ = run_cms(
            SAME_GRANULE_PROGRAM,
            config=replace(FAST, self_revalidation=False),
        )
        cost_with = system_with.stats.total_molecules(FAST.cost)
        cost_without = system_without.stats.total_molecules(FAST.cost)
        assert cost_with < cost_without


# Patch-then-call in a hot loop: the patching store, the call, and the
# patched instruction all sit in one granule, so the trace that inlines
# the call contains both the store and the stale code.  Regression for
# the armed-prologue hole: arming a *running* translation's
# self-revalidation prologue drops protection mid-body, and a later
# store in the same body could rewrite code the body then executed
# stale — the prologue only re-verifies on the next entry.  The host
# CPU now detects the buffered self-write at the commit boundary.
PATCH_AND_CALL_PROGRAM = """
start:
    mov ebx, 0
    mov ecx, 120
    mov esi, 0
loop:
    mov eax, ecx
    imul eax, 40503
    xor eax, 0x5A5A5A5A
    store [ebx + patch_site + 2], eax  ; rewrite the add immediate
    call helper
    xor esi, eax
    rol esi, 7
    dec ecx
    jnz loop
    cli
    hlt
helper:
    mov eax, 100
patch_site:
    add eax, 0                         ; immediate patched per call
    ret
.align 16
side_data:
    .word 0                            ; data in the code granule
"""


class TestArmedBodySelfWrite:
    def test_equivalence(self):
        assert_equivalent(PATCH_AND_CALL_PROGRAM, config=FAST)

    def test_equivalence_default_config(self):
        assert_equivalent(PATCH_AND_CALL_PROGRAM, config=CMSConfig())

    def test_equivalence_without_stylized(self):
        assert_equivalent(PATCH_AND_CALL_PROGRAM,
                          config=replace(FAST, stylized_smc=False))


# BLT-driver-style version cycling (§3.6.5): the opcode byte of one
# instruction alternates between ADD (0x20) and XOR (0x24) register
# forms, producing two code versions that repeat.
GROUPS_PROGRAM = """
start:
    mov edi, 0
    mov esi, 1
frame:
    ; choose version: even frames ADD_RR (0x20), odd frames XOR_RR (0x24)
    mov eax, 0x20
    test edi, 1
    jz patch
    mov eax, 0x24
patch:
    mov ebx, mutating
    storeb [ebx], eax
    mov ecx, 0
inner:
mutating:
    add esi, edx          ; opcode byte is rewritten between versions
    rol esi, 1
    inc ecx
    cmp ecx, 25
    jl inner
    mov edx, esi
    and edx, 0xFF
    inc edi
    cmp edi, 30
    jl frame
    cli
    hlt
"""


class TestTranslationGroups:
    def test_equivalence(self):
        assert_equivalent(GROUPS_PROGRAM, config=FAST)

    def test_versions_reactivated(self):
        both = assert_equivalent(GROUPS_PROGRAM, config=FAST)
        groups = both.cms_system.groups
        assert groups.retired >= 2
        assert groups.reactivations >= 1

    def test_reactivation_avoids_retranslation(self):
        both_groups = run_both(GROUPS_PROGRAM, config=FAST)
        no_groups = replace(FAST, translation_groups=False)
        both_plain = run_both(GROUPS_PROGRAM, config=no_groups)
        assert (both_groups.cms_system.stats.translations_made
                < both_plain.cms_system.stats.translations_made)

    def test_groups_disabled_still_correct(self):
        assert_equivalent(GROUPS_PROGRAM,
                          config=replace(FAST, translation_groups=False))


class TestForcedSelfCheck:
    def test_equivalence_with_forced_self_check(self):
        config = replace(FAST, force_self_check=True)
        both = assert_equivalent("""
        start:
            mov ecx, 0
            mov esi, 0
        loop:
            add esi, ecx
            xor esi, 0x5A5A5A5A
            inc ecx
            cmp ecx, 300
            jne loop
            cli
            hlt
        """, config=config)
        for translation in both.cms_system.tcache.translations():
            assert translation.policy.self_check

    def test_self_check_costs_more_molecules(self):
        source = """
        start:
            mov ecx, 0
            mov esi, 0
        loop:
            add esi, ecx
            xor esi, 0x5A5A5A5A
            inc ecx
            cmp ecx, 2000
            jne loop
            cli
            hlt
        """
        plain_system, _ = run_cms(source, config=FAST)
        checked_system, _ = run_cms(
            source, config=replace(FAST, force_self_check=True)
        )
        assert (checked_system.stats.host_molecules
                > plain_system.stats.host_molecules)

    def test_self_check_catches_smc_on_unprotected_page(self):
        # With self-checking forced, pages are left unprotected; a code
        # patch must still be caught by the entry/back-edge check.
        config = replace(FAST, force_self_check=True)
        assert_equivalent(STYLIZED_SMC_PROGRAM, config=config)


class TestDMAInvalidation:
    def test_dma_rewrites_hot_code(self):
        # A hot routine is overwritten by a DMA transfer (modelling OS
        # paging, §3.6.1); after the DMA completes the guest re-runs the
        # routine and must see the new code.
        source = """
        start:
            mov esi, 0
            ; make 'routine' hot
            mov edi, 0
        warm:
            mov esp, 0x8000
            call routine
            inc edi
            cmp edi, 30
            jl warm
            ; stage replacement code at 'staging', then DMA it over
            ; 'routine' (replacement adds 7 instead of 3)
            mov eax, staging
            out 0x50            ; DMA source
            mov eax, routine
            out 0x51            ; DMA destination
            mov eax, routine_len
            out 0x52            ; DMA length
            mov eax, 1
            out 0x53            ; start
        wait:
            in 0x53
            test eax, eax
            jnz wait
            ; run the rewritten routine
            mov edi, 0
        rerun:
            call routine
            inc edi
            cmp edi, 30
            jl rerun
            cli
            hlt
        routine:
            add esi, 3
            ret
        routine_end:
        routine_len = routine_end - routine
        staging:
            add esi, 7
            ret
        """
        both = assert_equivalent(source, config=FAST)
        # esi = 30*3 + 30*7 = 300 in both engines (checked by snapshot);
        # the CMS run must have invalidated the stale translation.
        assert both.cms_system.state.get_reg(6) == 300
        assert both.cms_system.stats.smc_invalidations >= 1


class TestInterpreterStoreServicing:
    def test_interpreted_smc_invalidates_translations(self):
        # Keep the threshold high so the *patcher* stays interpreted
        # while the patched loop is translated.
        config = CMSConfig(translation_threshold=6, fault_threshold=2)
        assert_equivalent(STYLIZED_SMC_PROGRAM, config=config)
