"""Unit tests for the translation cache, chaining, and groups."""

from __future__ import annotations

import pytest

from repro.cache.groups import TranslationGroups
from repro.cache.tcache import Translation, TranslationCache
from repro.host.atoms import Atom, AtomKind
from repro.host.molecule import Molecule
from repro.memory.physical import PAGE_SIZE
from repro.translator.policies import TranslationPolicy


def make_translation(entry=0x1000, length=32, molecules=4,
                     policy=None, snapshot=None) -> Translation:
    mols = []
    for _ in range(molecules - 1):
        m = Molecule()
        m.add(Atom(AtomKind.NOPA))
        mols.append(m)
    exit_mol = Molecule()
    exit_atom = Atom(AtomKind.EXIT, exit_target=entry + length)
    exit_mol.add(exit_atom)
    mols.append(exit_mol)
    return Translation(
        entry_eip=entry,
        molecules=mols,
        labels={"body": 0},
        entry_label="body",
        policy=policy or TranslationPolicy(),
        code_ranges=[(entry, length)],
        code_snapshot=snapshot if snapshot is not None else bytes(length),
        guest_instr_count=length // 4,
        exit_atoms=[exit_atom],
    )


class TestTranslationModel:
    def test_pages_single(self):
        t = make_translation(entry=0x1000, length=32)
        assert t.pages() == {1}

    def test_pages_spanning(self):
        t = make_translation(entry=PAGE_SIZE - 8, length=16)
        assert t.pages() == {0, 1}

    def test_overlaps(self):
        t = make_translation(entry=0x1000, length=32)
        assert t.overlaps(0x1010, 4)
        assert t.overlaps(0x0FFF, 2)  # first byte off, second inside
        assert not t.overlaps(0x1020, 4)
        assert not t.overlaps(0x0FF0, 4)

    def test_ids_unique(self):
        assert make_translation().id != make_translation().id


class TestTranslationCache:
    def test_insert_lookup(self):
        cache = TranslationCache()
        t = make_translation()
        cache.insert(t)
        assert cache.lookup(0x1000) is t
        assert cache.lookup(0x2000) is None
        assert len(cache) == 1

    def test_insert_replaces_same_entry(self):
        cache = TranslationCache()
        old = make_translation()
        new = make_translation()
        cache.insert(old)
        cache.insert(new)
        assert cache.lookup(0x1000) is new
        assert not old.valid
        assert len(cache) == 1

    def test_invalidate_page(self):
        cache = TranslationCache()
        a = make_translation(entry=0x1000)
        b = make_translation(entry=0x1100)
        c = make_translation(entry=0x2000 + PAGE_SIZE)
        for t in (a, b, c):
            cache.insert(t)
        victims = cache.invalidate_page(1)
        assert set(victims) == {a, b}
        assert cache.lookup(a.entry_eip) is None
        assert cache.lookup(c.entry_eip) is c

    def test_translations_overlapping(self):
        cache = TranslationCache()
        a = make_translation(entry=0x1000, length=32)
        b = make_translation(entry=0x1040, length=32)
        cache.insert(a)
        cache.insert(b)
        assert cache.translations_overlapping(0x1010, 4) == [a]
        hits = cache.translations_overlapping(0x1000, 0x100)
        assert set(hits) == {a, b}

    def test_capacity_collects(self):
        cache = TranslationCache(capacity_molecules=10)
        for i in range(4):
            cache.insert(make_translation(entry=0x1000 + i * 0x100,
                                          molecules=4))
        # Capacity pressure triggers eviction (or a flush fallback) and
        # the cache never exceeds its molecule budget.
        assert cache.evictions >= 1 or cache.flushes >= 1
        assert cache.total_molecules <= 10

    def test_remove_keeps_valid(self):
        cache = TranslationCache()
        t = make_translation()
        cache.insert(t)
        cache.remove(t)
        assert t.valid  # retired, not invalidated
        assert cache.lookup(0x1000) is None

    def test_total_molecules_accounting(self):
        cache = TranslationCache()
        t = make_translation(molecules=6)
        cache.insert(t)
        assert cache.total_molecules == 6
        cache.remove(t)
        assert cache.total_molecules == 0


class TestChaining:
    def test_chain_and_follow_pointer(self):
        cache = TranslationCache()
        a = make_translation(entry=0x1000)
        b = make_translation(entry=0x2000)
        cache.insert(a)
        cache.insert(b)
        cache.chain(a, a.exit_atoms[0], b)
        assert a.exit_atoms[0].chained_translation is b
        assert a.exit_atoms[0] in b.incoming_chains

    def test_unchain_on_target_invalidation(self):
        cache = TranslationCache()
        a = make_translation(entry=0x1000)
        b = make_translation(entry=0x2000)
        cache.insert(a)
        cache.insert(b)
        cache.chain(a, a.exit_atoms[0], b)
        cache.invalidate_translation(b)
        assert a.exit_atoms[0].chained_translation is None
        assert cache.unchains == 1

    def test_unchain_on_source_invalidation(self):
        cache = TranslationCache()
        a = make_translation(entry=0x1000)
        b = make_translation(entry=0x2000)
        cache.insert(a)
        cache.insert(b)
        cache.chain(a, a.exit_atoms[0], b)
        cache.invalidate_translation(a)
        assert a.exit_atoms[0] not in b.incoming_chains

    def test_chain_idempotent(self):
        cache = TranslationCache()
        a = make_translation(entry=0x1000)
        b = make_translation(entry=0x2000)
        cache.insert(a)
        cache.insert(b)
        cache.chain(a, a.exit_atoms[0], b)
        cache.chain(a, a.exit_atoms[0], b)
        assert b.incoming_chains.count(a.exit_atoms[0]) == 1

    def test_flush_unchains_everything(self):
        cache = TranslationCache()
        a = make_translation(entry=0x1000)
        b = make_translation(entry=0x2000)
        cache.insert(a)
        cache.insert(b)
        cache.chain(a, a.exit_atoms[0], b)
        cache.flush()
        assert not a.valid and not b.valid


class TestGroups:
    def test_retire_and_match(self):
        groups = TranslationGroups()
        v1 = make_translation(snapshot=b"\x01" * 32)
        v2 = make_translation(snapshot=b"\x02" * 32)
        groups.retire(v1)
        groups.retire(v2)
        hit = groups.match(0x1000, b"\x01" * 32)
        assert hit is v1
        # Popped on match: a second identical match misses.
        assert groups.match(0x1000, b"\x01" * 32) is None

    def test_match_current_reads_ranges(self):
        groups = TranslationGroups()
        v1 = make_translation(snapshot=b"\x01" * 32)
        groups.retire(v1)

        def reader(ranges):
            return b"\x01" * sum(length for _start, length in ranges)

        assert groups.match_current(0x1000, reader) is v1

    def test_match_current_misses_on_changed_bytes(self):
        groups = TranslationGroups()
        groups.retire(make_translation(snapshot=b"\x01" * 32))
        assert groups.match_current(
            0x1000, lambda ranges: b"\x02" * 32
        ) is None

    def test_capacity_evicts_oldest(self):
        groups = TranslationGroups(max_versions_per_group=2)
        v1 = make_translation(snapshot=b"\x01" * 32)
        v2 = make_translation(snapshot=b"\x02" * 32)
        v3 = make_translation(snapshot=b"\x03" * 32)
        for v in (v1, v2, v3):
            groups.retire(v)
        assert groups.versions(0x1000) == 2
        assert groups.match(0x1000, b"\x01" * 32) is None  # evicted
        assert groups.match(0x1000, b"\x03" * 32) is v3

    def test_same_bytes_replaces(self):
        groups = TranslationGroups()
        v1 = make_translation(snapshot=b"\x01" * 32)
        v1b = make_translation(snapshot=b"\x01" * 32)
        groups.retire(v1)
        groups.retire(v1b)
        assert groups.versions(0x1000) == 1
        assert groups.match(0x1000, b"\x01" * 32) is v1b

    def test_groups_keyed_by_entry(self):
        groups = TranslationGroups()
        a = make_translation(entry=0x1000, snapshot=b"\x01" * 32)
        b = make_translation(entry=0x2000, snapshot=b"\x01" * 32)
        groups.retire(a)
        groups.retire(b)
        assert groups.match(0x1000, b"\x01" * 32) is a
        assert groups.match(0x2000, b"\x01" * 32) is b
