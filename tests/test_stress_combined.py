"""Combined stress: every paper challenge in one guest program.

One guest exercises, simultaneously: paging, timer interrupts, port and
memory-mapped I/O, DMA into RAM, genuine guest faults inside hot loops,
self-modifying code, and data beside code — the "wide variety of
everyday workloads" situation the paper says reveals these challenges.
The oracle is the printed checksum versus the pure interpreter.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro import CMSConfig
from repro.machine import CONSOLE_MMIO_BASE
from repro.workloads.builder import RUNTIME_LIBRARY, STACK_TOP

from conftest import run_both

# Long-running scenario matrix: runs in the slow lane
# (`pytest -m slow`), not tier-1.
pytestmark = pytest.mark.slow

STRESS_PROGRAM = f"""
.org 0x1000
start:
    mov esp, {STACK_TOP:#x}
    mov esi, 0

    ; vectors: #DE handler + timer IRQ + DMA-completion IRQ
    mov ebx, 0
    storei [ebx+0], de_handler
    storei [ebx+128], timer_isr      ; vector 32
    storei [ebx+136], dma_isr        ; vector 34

    ; identity page table for the first 2 MiB, then paging on
    mov ebx, 0x00200000
    mov ecx, 0
pt_build:
    mov eax, ecx
    shl eax, 12
    or eax, 3
    storex [ebx+ecx*4], eax
    inc ecx
    cmp ecx, 512
    jne pt_build
    mov eax, 0x00200000
    setpt eax
    pgon

    ; timer on
    mov ebx, tickcount
    storei [ebx], 0
    mov eax, 900
    out 0x40
    mov eax, 1
    out 0x41
    sti

    ; ---- main frame loop ----------------------------------------------
    mov edi, 0
frame:
    ; 1. self-modifying inner kernel: patch the immediate below
    mov eax, edi
    imul eax, 0x01010101
    mov ebx, patch_site + 2
    store [ebx], eax
    mov ecx, 0
inner:
patch_site:
    add esi, 0x11111111
    rol esi, 1
    ; 2. mixed data beside code, same page
    mov ebx, frame_state
    load eax, [ebx]
    inc eax
    store [ebx], eax
    ; 3. a division that faults on the last inner iteration
    mov edx, 0
    mov eax, 840
    mov ebp, 19
    sub ebp, ecx         ; reaches 0 at ecx == 19
    div ebp
    add esi, eax
    inc ecx
    cmp ecx, 20
    jl inner
resume:
    ; 4. MMIO console output for this frame.  The device window lives
    ;    above the identity-mapped range, so paging is toggled off
    ;    around the access (as real early-boot code does).
    pgoff
    mov ebx, {CONSOLE_MMIO_BASE:#x}
    mov eax, edi
    and eax, 0x3F
    add eax, 0x30
    storeb [ebx], eax
    pgon
    ; 5. DMA a block and wait for it
    mov eax, dmasrc
    out 0x50
    mov eax, dmadst
    out 0x51
    mov eax, 128
    out 0x52
    mov eax, 1
    out 0x53
dma_wait:
    in 0x53
    test eax, eax
    jnz dma_wait
    mov ebx, dmadst
    load eax, [ebx]
    xor esi, eax
    inc edi
    cmp edi, 25
    jl frame

    ; require at least one timer tick before finishing
wait_tick:
    mov ebx, tickcount
    load eax, [ebx]
    test eax, eax
    jz wait_tick
    cli
    pgoff
    call print_checksum
    cli
    hlt

de_handler:
    ; skip the faulting 2-byte div and resume at 'resume'
    pop eax                  ; faulting eip
    mov eax, resume
    push eax
    xor esi, 0xD1D1D1D1
    iret

dma_isr:
    push eax
    mov eax, 0x20
    out 0x20                 ; EOI
    pop eax
    iret

timer_isr:
    push eax
    push ebx
    mov ebx, tickcount
    load eax, [ebx]
    inc eax
    store [ebx], eax
    mov eax, 0x20
    out 0x20
    pop ebx
    pop eax
    iret

.align 64
frame_state:
    .word 0
.space 60

{RUNTIME_LIBRARY}

.org 0x00108000
dmasrc:
    .space 128, 0xA5
dmadst:
    .space 128
tickcount:
    .word 0
"""


@pytest.mark.parametrize("config", [
    CMSConfig(translation_threshold=4, fault_threshold=2),
    CMSConfig(translation_threshold=4, fault_threshold=2,
              reorder_memory=False, control_speculation=False),
    CMSConfig(translation_threshold=4, fault_threshold=2,
              fine_grain_protection=False),
    CMSConfig(translation_threshold=4, fault_threshold=2,
              force_self_check=True),
], ids=["full", "no-reorder", "no-fine-grain", "forced-self-check"])
def test_combined_stress_checksum(config):
    both = run_both(STRESS_PROGRAM, config=config)
    assert both.ref_result.halted and both.cms_result.halted
    assert both.cms_result.console_output == \
        both.ref_result.console_output, (
        f"diverged: ref {both.ref_result.console_output!r} "
        f"cms {both.cms_result.console_output!r}"
    )


def test_combined_stress_exercises_everything():
    both = run_both(STRESS_PROGRAM,
                    config=CMSConfig(translation_threshold=4,
                                     fault_threshold=2))
    system = both.cms_system
    stats = system.stats
    machine = system.machine
    assert machine.mmu.translations > 0, "paging never engaged"
    assert stats.interrupts_delivered >= 1, "no timer interrupts"
    assert machine.dma.transfers_completed >= 25, "DMA did not run"
    assert stats.guest_exceptions_delivered >= 25, "#DE never delivered"
    assert stats.protection_faults >= 1, "no SMC protection activity"
    assert stats.translations_made >= 1
    assert stats.rollbacks >= 1
