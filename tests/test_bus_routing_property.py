"""Fast-path bus routing agrees with the linear-scan reference.

The bus routes every access through base-sorted arrays with ``bisect``
(plus a pure-RAM fast path); the seed's linear scans survive as the
executable reference (``_linear_region_at`` / ``_linear_is_io``).  The
two implementations must agree on every address and every access size —
including accesses that straddle a region boundary on either edge —
for arbitrary non-overlapping region layouts.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.memory.bus import MemoryBus, MMIORegion
from repro.memory.physical import PhysicalMemory

RAM_SIZE = 1 << 20
ADDR_SPACE = 1 << 24  # keep layouts dense enough to collide often


class NullDevice:
    """MMIO handler that records nothing and returns zeros."""

    def mmio_read(self, offset: int, size: int) -> int:
        return 0

    def mmio_write(self, offset: int, value: int, size: int) -> None:
        pass


@st.composite
def region_layouts(draw):
    """A list of non-overlapping (base, size) MMIO windows."""
    count = draw(st.integers(min_value=0, max_value=8))
    spans = []
    for _ in range(count):
        base = draw(st.integers(min_value=0, max_value=ADDR_SPACE - 1))
        size = draw(st.integers(min_value=1, max_value=1 << 16))
        if any(base < b + s and b < base + size for b, s in spans):
            continue  # drop overlapping draws instead of rejecting
        spans.append((base, min(size, ADDR_SPACE - base)))
    return spans


def build_bus(spans) -> MemoryBus:
    bus = MemoryBus(PhysicalMemory(RAM_SIZE))
    device = NullDevice()
    for i, (base, size) in enumerate(spans):
        bus.add_region(MMIORegion(base, size, device, name=f"r{i}"))
    return bus


def probe_addresses(spans) -> list[int]:
    """Boundary-heavy probe set: edges of every region plus corners."""
    probes = {0, 1, ADDR_SPACE - 8, RAM_SIZE - 4, RAM_SIZE}
    for base, size in spans:
        for edge in (base, base + size):
            probes.update(range(max(0, edge - 4), edge + 4))
    return sorted(probes)


@given(region_layouts(), st.lists(
    st.integers(min_value=0, max_value=ADDR_SPACE), max_size=32))
@settings(max_examples=200, deadline=None)
def test_fast_routing_matches_linear(spans, random_addrs):
    bus = build_bus(spans)
    for addr in probe_addresses(spans) + random_addrs:
        fast_at = bus.region_at(addr)
        assert fast_at is bus._linear_region_at(addr), hex(addr)
        for size in (1, 2, 4, 16):
            assert bus.is_io(addr, size) == bus._linear_is_io(addr, size), (
                f"is_io disagrees at {addr:#x} size {size}"
            )


@given(region_layouts())
@settings(max_examples=100, deadline=None)
def test_fast_and_linear_modes_access_identically(spans):
    """Full read/write path parity, including the pure-RAM fast path
    and straddles of the lowest MMIO base."""
    fast = build_bus(spans)
    linear = build_bus(spans)
    linear.set_fast_routing(False)
    probes = [a for a in probe_addresses(spans) if a + 4 <= RAM_SIZE]
    for addr in probes:
        for size in (1, 2, 4):
            fast.write(addr, 0xA5A5A5A5, size)
            linear.write(addr, 0xA5A5A5A5, size)
            assert fast.read(addr, size) == linear.read(addr, size)
    assert fast.io_reads == linear.io_reads
    assert fast.io_writes == linear.io_writes
    assert (fast.ram.read_bytes(0, RAM_SIZE)
            == linear.ram.read_bytes(0, RAM_SIZE))


def test_unsupported_size_uniform_and_side_effect_free():
    """Satellite bugfix: RAM and MMIO reject bad sizes identically,
    before any counter or memory side effect."""
    import pytest

    bus = build_bus([(RAM_SIZE, 0x1000)])
    for addr in (0x100, RAM_SIZE + 4):  # one RAM, one MMIO target
        for size in (0, 3, 8):
            with pytest.raises(ValueError):
                bus.read(addr, size)
            with pytest.raises(ValueError):
                bus.write(addr, 0, size)
    assert bus.io_reads == 0 and bus.io_writes == 0
    assert bus.ram.read_bytes(0, 16) == bytes(16)


def test_size2_ram_access_roundtrip():
    """Satellite bugfix: 16-bit accesses work on the RAM path."""
    bus = build_bus([])
    bus.write(0x100, 0xBEEF, 2)
    assert bus.read(0x100, 2) == 0xBEEF
    assert bus.read(0x100, 1) == 0xEF  # little-endian
    assert bus.read(0x101, 1) == 0xBE
    seen = []
    bus.store_observers.append(lambda addr, size: seen.append((addr, size)))
    bus.write(0xFFFE, 0x1234, 2)  # unaligned, near a page boundary
    assert bus.read(0xFFFE, 2) == 0x1234
    assert seen == [(0xFFFE, 2)]
