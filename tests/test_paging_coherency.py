"""Paging coherency: translated code vs a live guest MMU (§3.2, §3.6.1).

Pins the three MMU-related fixes plus the precise-exception contract:

* stale translated code must not survive a page-table remap — neither
  via dispatch (a translation whose pages are no longer identity-
  mapped) nor via a chain patched before the remap,
* a write-protect #PF raised mid-translation must roll back and
  re-deliver in the interpreter at the exact faulting instruction,
* a translated store into the live page table must abort the region
  (store-buffer contents are invisible to the MMU's table walker),
* CMS-internal mapping probes must never perturb the architectural
  ``translations``/``faults`` counters.
"""

from __future__ import annotations

from repro import CMSConfig
from repro.cms.system import CodeMorphingSystem
from repro.machine import Machine
from repro.memory.mmu import PTE_PRESENT, PTE_WRITABLE
from repro.memory.physical import PAGE_SIZE

from conftest import assert_equivalent, run_cms

FAST = CMSConfig(translation_threshold=4, fault_threshold=2)

# Identity page table over all 1024 frames at 0x00200000, then paging
# on.  EBX is left pointing at the table.
_PAGING_ON = """
    mov ebx, 0x00200000
    mov ecx, 0
ptbuild:
    mov eax, ecx
    shl eax, 12
    or eax, 3
    storex [ebx + ecx*4], eax
    inc ecx
    cmp ecx, 1024
    jne ptbuild
    mov eax, 0x00200000
    setpt eax
    pgon
"""

# A hot routine whose head (page 0x302) falls through a `jmp` into a
# tail on the next page (0x303).  Once both sides are translated and
# chained, remapping the tail page to an alternate frame must force the
# next call through the new mapping — a stale tail translation (or a
# stale chain into it) folds 0x2222 where the interpreter folds 0x4444.
STALE_TAIL_PROGRAM = """
.org 0x00010000
start:
    mov esp, 0x0007F000
    mov esi, 0
""" + _PAGING_ON + """
    mov edi, 0
hot:
    call span
    add esi, eax
    inc edi
    cmp edi, 16
    jne hot
    storei [ebx + 0xC0C], 0x00304003    ; vpn 0x303 -> alt frame 0x304
    call span
    add esi, eax
    storei [ebx + 0xC0C], 0x00303003    ; back to identity
    call span
    add esi, eax
    pgoff
    cli
    hlt

.org 0x00302FF0
span:
    mov eax, 0x1111
    jmp span_tail

.org 0x00303000
span_tail:
    add eax, 0x2222
    ret

.org 0x00304000
span_alt:
    add eax, 0x4444
    ret
"""

# A hot store loop sharing its page (0x60) with its data cell.  After a
# warm-up that gets it translated, the main program clears the PTE's
# writable bit and calls it once more: the store must deliver a precise
# #PF — the handler records the pushed EIP and restores the bit.
WP_FLIP_PROGRAM = """
.org 0x00010000
start:
    mov esp, 0x0007F000
    mov ecx, 0
    storei [ecx + 56], isr_pf           ; IVT vector 14
    storei [ecx + expected], wp_store
""" + _PAGING_ON + """
    mov esi, 0
    mov edi, 0
warm:
    call wp_fn
    inc edi
    cmp edi, 6
    jne warm
    load eax, [ebx + 0x180]             ; PTE of vpn 0x60
    and eax, 0xFFFFFFFD                 ; clear writable
    store [ebx + 0x180], eax
    call wp_fn                          ; store faults mid-translation
    pgoff
    mov ecx, 0
    load eax, [ecx + wp_cell]
    add esi, eax
    load eax, [ecx + fault_eip]
    add esi, eax
    cli
    hlt

isr_pf:
    push eax
    push ecx
    load eax, [esp + 12]                ; pushed (faulting) EIP
    mov ecx, 0
    store [ecx + fault_eip], eax
    load eax, [ecx + 0x200180]
    or eax, 2                           ; restore writable
    store [ecx + 0x200180], eax
    pop ecx
    pop eax
    add esp, 4                          ; drop the error code
    iret

.org 0x00060000
wp_fn:
    mov ecx, 3
    mov edx, 0
wp_loop:
    load eax, [edx + wp_cell]
    imul eax, 5
    add eax, 0x777
wp_store:
    store [edx + wp_cell], eax
    dec ecx
    jnz wp_loop
    ret
.align 16
wp_cell:
    .word 0x1234

.org 0x00100000
fault_eip:
    .word 0
expected:
    .word 0
"""

# A hot loop that rewrites a live PTE (with its current value) every
# iteration: each translated pass must abort with MMU_MUTATION and
# re-execute the store through the interpreter.
PT_STORE_PROGRAM = """
.org 0x00010000
start:
    mov esp, 0x0007F000
    mov esi, 0
""" + _PAGING_ON + """
    mov edi, 0
mutloop:
    storei [ebx + 0xFFC], 0x003FF003    ; PTE of vpn 0x3FF, same value
    add esi, 7
    rol esi, 3
    inc edi
    cmp edi, 24
    jne mutloop
    pgoff
    cli
    hlt
"""


def _ram32(machine: Machine, addr: int) -> int:
    return machine.ram.read32(addr)


class TestStaleCodeAfterRemap:
    def test_remapped_tail_is_refetched(self):
        both = assert_equivalent(STALE_TAIL_PROGRAM, config=FAST)
        stats = both.cms_system.stats
        assert stats.translations_made > 0
        # The hazard was armed: the head had really chained into the
        # tail, and the remap severed those chains (§3.6.1).
        assert stats.chains_followed > 0
        assert stats.mapping_unchains > 0
        # The folded value proves the alternate tail actually ran:
        # 16 * (0x1111 + 0x2222) + (0x1111 + 0x4444) + (0x1111 + 0x2222)
        expected = 16 * 0x3333 + 0x5555 + 0x3333
        regs, _, _ = both.cms_system.state.snapshot()
        assert regs[6] == expected  # ESI

    def test_remap_while_cold_is_also_correct(self):
        # Interpreter-threshold run: no translations, same result —
        # the reference semantics the translated path must match.
        system, result = run_cms(STALE_TAIL_PROGRAM,
                                 config=FAST.interpreter_only())
        assert result.halted
        assert system.stats.translations_made == 0


class TestPreciseWriteProtectFault:
    def test_pf_delivers_at_exact_faulting_instruction(self):
        both = assert_equivalent(WP_FLIP_PROGRAM, config=FAST)
        # Exactly one #PF in each leg — speculative rollback must not
        # double-deliver.
        assert both.ref_system.interpreter.exceptions_delivered == 1
        assert both.cms_system.interpreter.exceptions_delivered == 1
        # The fault really was taken out of translated code ...
        stats = both.cms_system.stats
        assert stats.faults.get("GUEST_FAULT", 0) >= 1
        assert stats.rollbacks >= 1
        # ... and the handler saw the exact faulting store's address.
        machine = both.cms_machine
        assert _ram32(machine, 0x00100000) == _ram32(machine, 0x00100004)
        assert _ram32(machine, 0x00100000) != 0


class TestLivePageTableStores:
    def test_translated_pt_store_aborts_and_reexecutes(self):
        both = assert_equivalent(PT_STORE_PROGRAM, config=FAST)
        stats = both.cms_system.stats
        assert stats.faults.get("MMU_MUTATION", 0) > 0
        assert stats.rollbacks > 0


class TestProbePurity:
    def make_paged_system(self) -> CodeMorphingSystem:
        machine = Machine()
        machine.load_source("start:\n    cli\n    hlt\n")
        pt_base = 0x00200000
        for vpn in range(1024):
            machine.ram.write32(pt_base + vpn * 4,
                                (vpn << 12) | PTE_PRESENT | PTE_WRITABLE)
        # vpn 0x60 non-identity, vpn 0x61 not present.
        machine.ram.write32(pt_base + 0x60 * 4,
                            (0x70 << 12) | PTE_PRESENT)
        machine.ram.write32(pt_base + 0x61 * 4, 0)
        machine.mmu.set_page_table(pt_base)
        machine.mmu.enable_paging()
        return CodeMorphingSystem(machine, FAST)

    def test_identity_mapped_check_is_non_counting(self):
        system = self.make_paged_system()
        mmu = system.machine.mmu
        before = (mmu.translations, mmu.faults)
        for _ in range(5):
            assert system._identity_mapped(0x10000)  # identity
            assert not system._identity_mapped(0x60 * PAGE_SIZE)
            assert not system._identity_mapped(0x61 * PAGE_SIZE)
        assert (mmu.translations, mmu.faults) == before
        assert mmu.probes == 15

    def test_oracle_leg_fault_counter_parity(self):
        # Runner-level pin: in the interpreter-only leg every MMU
        # fault raised is delivered, so the architectural fault counter
        # must exactly equal delivered exceptions.  Counting CMS-side
        # probes (the pre-fix behavior) breaks this equality.
        from repro.scenarios.matrix import get
        from repro.scenarios.runner import _build_machine

        prog = get("paging").build(6_000, 3)
        machine, entry = _build_machine(prog, 3)
        oracle = CodeMorphingSystem(machine,
                                    CMSConfig().interpreter_only())
        oracle.run(entry, max_instructions=prog.max_instructions)
        delivered = oracle.interpreter.exceptions_delivered
        assert delivered > 0
        assert machine.mmu.faults == delivered
        assert machine.mmu.probes > 0  # the dispatcher really probed
