"""Golden equivalence tests: CMS must match the pure interpreter exactly
on deterministic workloads (identical console output, registers, flags,
and RAM), while actually exercising the translation path."""

from __future__ import annotations

import pytest

from repro import CMSConfig
from repro.machine import CONSOLE_MMIO_BASE

from conftest import assert_equivalent, run_both

FAST = CMSConfig(translation_threshold=4)


class TestArithmeticEquivalence:
    def test_counting_loop(self):
        both = assert_equivalent("""
        start:
            mov ecx, 0
        loop:
            inc ecx
            cmp ecx, 500
            jne loop
            cli
            hlt
        """, config=FAST)
        assert both.cms_system.stats.translations_made >= 1
        assert both.cms_system.stats.host_molecules > 0

    def test_nested_loops_with_flags(self):
        assert_equivalent("""
        start:
            mov esi, 0          ; checksum
            mov ecx, 0
        outer:
            mov edx, 0
        inner:
            mov eax, ecx
            imul eax, 13
            add eax, edx
            xor esi, eax
            rol esi, 3
            inc edx
            cmp edx, 20
            jl inner
            inc ecx
            cmp ecx, 20
            jl outer
            cli
            hlt
        """, config=FAST)

    def test_signed_unsigned_branches(self):
        assert_equivalent("""
        start:
            mov esi, 0
            mov ecx, 0xFFFFFF00
        loop:
            mov eax, ecx
            cmp eax, 0x100
            jb below
            ja above
            jmp next
        below:
            add esi, 1
            jmp next
        above:
            add esi, 0x10000
        next:
            inc ecx
            cmp ecx, 0x100
            jne loop
            cli
            hlt
        """, config=FAST)

    def test_adc_sbb_wide_arithmetic(self):
        assert_equivalent("""
        start:
            mov eax, 0xFFFFFFF0  ; low
            mov edx, 0x0         ; high
            mov ecx, 0
        loop:
            add eax, 7
            adc edx, 0
            inc ecx
            cmp ecx, 300
            jne loop
            cli
            hlt
        """, config=FAST)

    def test_division_loop(self):
        assert_equivalent("""
        start:
            mov esi, 1000000
            mov edi, 0
        loop:
            mov edx, 0
            mov eax, esi
            mov ecx, 7
            div ecx
            add edi, edx
            sub esi, 13
            cmp esi, 100
            jg loop
            cli
            hlt
        """, config=FAST)

    def test_shift_by_cl(self):
        assert_equivalent("""
        start:
            mov esi, 0
            mov ecx, 0
        loop:
            mov eax, 0x12345678
            shl eax, cl
            xor esi, eax
            mov ebx, 0x87654321
            shr ebx, cl
            add esi, ebx
            mov edx, 0x80000000
            sar edx, cl
            xor esi, edx
            inc ecx
            cmp ecx, 40
            jne loop
            cli
            hlt
        """, config=FAST)

    def test_parity_flag_consumers(self):
        assert_equivalent("""
        start:
            mov esi, 0
            mov ecx, 0
        loop:
            mov eax, ecx
            and eax, 0xFF
            jp even_par
            add esi, 1
            jmp next
        even_par:
            add esi, 0x100
        next:
            inc ecx
            cmp ecx, 256
            jne loop
            cli
            hlt
        """, config=FAST)


class TestMemoryEquivalence:
    def test_array_sum(self):
        assert_equivalent("""
        BUF = 0x4000
        start:
            mov ebx, BUF
            mov ecx, 0
        fill:
            mov eax, ecx
            imul eax, 3
            storex [ebx+ecx*4], eax
            inc ecx
            cmp ecx, 100
            jne fill
            mov ecx, 0
            mov esi, 0
        sum:
            loadx eax, [ebx+ecx*4]
            add esi, eax
            inc ecx
            cmp ecx, 100
            jne sum
            cli
            hlt
        """, config=FAST)

    def test_byte_string_copy(self):
        assert_equivalent("""
        SRC = 0x4000
        DST = 0x5000
        start:
            ; write a pattern
            mov ecx, 0
            mov ebx, SRC
        init:
            mov eax, ecx
            imul eax, 7
            storebx [ebx+ecx*1], eax
            inc ecx
            cmp ecx, 256
            jne init
            ; copy bytes
            mov ecx, 0
            mov edx, DST
        copy:
            loadbx eax, [ebx+ecx*1]
            storebx [edx+ecx*1], eax
            inc ecx
            cmp ecx, 256
            jne copy
            cli
            hlt
        """, config=FAST)

    def test_pointer_chase(self):
        assert_equivalent("""
        NODES = 0x4000
        start:
            ; build a linked list of 64 nodes: [next, value]
            mov ecx, 0
            mov ebx, NODES
        build:
            mov eax, ecx
            inc eax
            imul eax, 8
            add eax, NODES      ; next pointer
            storex [ebx+ecx*8], eax
            mov eax, ecx
            imul eax, ecx
            lea edx, [ebx+8]
            storex [edx+ecx*8], eax   ; value at offset +8? no: +4
            inc ecx
            cmp ecx, 64
            jne build
            ; walk it
            mov esi, 0
            mov eax, NODES
            mov ecx, 0
        walk:
            load edx, [eax]
            mov eax, edx
            inc ecx
            cmp ecx, 63
            jne walk
            cli
            hlt
        """, config=FAST)

    def test_store_load_same_address_in_loop(self):
        # Exercises store-to-load forwarding through the gated buffer.
        assert_equivalent("""
        CELL = 0x4000
        start:
            mov ebx, CELL
            mov ecx, 0
        loop:
            load eax, [ebx]
            add eax, 3
            store [ebx], eax
            load edx, [ebx]     ; must observe the buffered store
            add esi, edx
            inc ecx
            cmp ecx, 200
            jne loop
            cli
            hlt
        """, config=FAST)

    def test_overlapping_loads_stores_alias_pressure(self):
        # Loads and stores through two registers that alias the same
        # buffer — designed so the scheduler's speculation is wrong some
        # of the time and the alias hardware must catch it.
        assert_equivalent("""
        BUF = 0x4000
        start:
            mov ebx, BUF
            mov edx, BUF        ; edx aliases ebx exactly
            mov ecx, 0
        loop:
            store [ebx+4], ecx
            load eax, [edx+4]   ; overlaps the store above
            add esi, eax
            store [ebx+8], eax
            load edi, [edx+8]
            add esi, edi
            inc ecx
            cmp ecx, 300
            jne loop
            cli
            hlt
        """, config=FAST)

    def test_stack_heavy_calls(self):
        assert_equivalent("""
        start:
            mov esp, 0x8000
            mov esi, 0
            mov ecx, 0
        loop:
            push ecx
            call double_it
            pop ecx
            add esi, eax
            inc ecx
            cmp ecx, 100
            jne loop
            cli
            hlt
        double_it:
            load eax, [esp+4]    ; argument
            add eax, eax
            ret
        """, config=FAST)


class TestMMIOEquivalence:
    def test_console_port_output(self):
        both = assert_equivalent("""
        start:
            mov ebx, msg
        next:
            loadb eax, [ebx]
            test eax, eax
            jz done
            out 0xE9
            inc ebx
            jmp next
        done:
            cli
            hlt
        msg:
            .asciz "hello from the translation cache! 0123456789"
        """, config=FAST)
        assert "translation cache" in both.cms_result.console_output

    def test_console_mmio_stores_in_hot_loop(self):
        both = assert_equivalent(f"""
        start:
            mov ebx, {CONSOLE_MMIO_BASE}
            mov ecx, 0
        loop:
            mov eax, ecx
            and eax, 0x3F
            add eax, 0x20
            storeb [ebx], eax   ; memory-mapped I/O in a hot loop
            inc ecx
            cmp ecx, 400
            jne loop
            cli
            hlt
        """, config=FAST)
        stats = both.cms_system.stats
        # Either the profile pre-learned the MMIO site, or a speculation
        # fault taught CMS about it; either way output must match and
        # the loop must still end up translated.
        assert both.cms_system.stats.translations_made >= 1
        assert len(both.cms_result.console_output) == 400

    def test_mixed_ram_and_mmio_same_instruction(self):
        # One instruction alternates between RAM and MMIO targets: the
        # hardest case of §3.4 ("a given x86 instruction can access both
        # regular memory and I/O space over the course of execution").
        assert_equivalent(f"""
        RAMBUF = 0x4000
        start:
            mov ecx, 0
        loop:
            mov ebx, RAMBUF
            test ecx, 1
            jz use_ram
            mov ebx, {CONSOLE_MMIO_BASE}
        use_ram:
            mov eax, 0x41
            storeb [ebx], eax    ; RAM on even, MMIO on odd iterations
            inc ecx
            cmp ecx, 100
            jne loop
            cli
            hlt
        """, config=FAST)


class TestExceptionEquivalence:
    def test_genuine_divide_fault_in_hot_loop(self):
        # The divisor becomes zero late, after the loop is translated:
        # the translation takes a guest fault, rolls back, and the
        # interpreter must deliver #DE precisely.
        assert_equivalent("""
        .org 0
        .word handler
        .org 0x1000
        start:
            mov esp, 0x8000
            mov esi, 0
            mov ecx, 200
        loop:
            mov edx, 0
            mov eax, 10000
            div ecx             ; faults when ecx reaches 0
            add esi, eax
            dec ecx
            jmp loop
        handler:
            ; reached with #DE when ecx == 0
            mov edi, 0xFA17
            cli
            hlt
        """, config=FAST)

    def test_page_fault_recovery_precise(self):
        assert_equivalent("""
        PT = 0x100000
        .org 14*4
        .word pf_handler
        .org 0x1000
        start:
            mov esp, 0x8000
            ; identity-map the first 64 pages
            mov ebx, PT
            mov ecx, 0
        build:
            mov eax, ecx
            shl eax, 12
            or eax, 3
            storex [ebx+ecx*4], eax
            inc ecx
            cmp ecx, 64
            jne build
            mov eax, PT
            setpt eax
            pgon
            ; hot loop reading mapped memory, then one unmapped access
            mov esi, 0
            mov ecx, 0
            mov ebx, 0x4000
        loop:
            load eax, [ebx]
            add esi, eax
            inc ecx
            cmp ecx, 150
            jne loop
            mov ebx, 0x50000      ; VPN 80: unmapped -> #PF
            load eax, [ebx]
        pf_handler:
            pgoff
            pop edi               ; error code
            mov edx, 0xFEED
            cli
            hlt
        """, config=FAST)

    def test_int3_breakpoint_flow(self):
        assert_equivalent("""
        .org 3*4
        .word handler
        .org 0x1000
        start:
            mov esp, 0x8000
            mov ecx, 0
        loop:
            inc ecx
            cmp ecx, 50
            jne loop
            int 3
        after:
            mov ebx, 2
            cli
            hlt
        handler:
            mov edi, 0xB9
            iret
        """, config=FAST)


class TestChainingAndCache:
    def test_call_heavy_code_with_indirect_exits(self):
        both = assert_equivalent("""
        start:
            mov esp, 0x8000
            mov esi, 0
            mov ecx, 0
        outer:
            call work_a
            call work_b
            inc ecx
            cmp ecx, 120
            jne outer
            cli
            hlt
        work_a:
            add esi, 3
            ret
        work_b:
            xor esi, 0x55
            ret
        """, config=FAST)
        assert both.cms_system.stats.translations_made >= 1

    def test_chaining_between_hot_regions(self):
        # Two loop regions connected by static branches: the side exit
        # of region A gets chained directly to region B's translation.
        both = assert_equivalent("""
        start:
            mov esi, 0
            mov edi, 30
        again:
            mov ecx, 0
        loop_a:
            add esi, 1
            inc ecx
            cmp ecx, 40
            jl loop_a
            mov edx, 0
        loop_b:
            xor esi, edx
            inc edx
            cmp edx, 40
            jl loop_b
            dec edi
            jnz again
            cli
            hlt
        """, config=FAST)
        stats = both.cms_system.stats
        assert stats.chain_patches >= 1
        assert stats.chains_followed >= 1

    def test_tcache_flush_on_capacity(self):
        from dataclasses import replace

        config = replace(FAST, tcache_capacity_molecules=40)
        both = assert_equivalent("""
        start:
            mov esp, 0x8000
            mov esi, 0
            mov ecx, 0
        outer:
            call f1
            call f2
            call f3
            inc ecx
            cmp ecx, 200
            jne outer
            cli
            hlt
        f1:
            add esi, 1
            ret
        f2:
            add esi, 2
            ret
        f3:
            add esi, 3
            ret
        """, config=config)
        tcache = both.cms_system.tcache
        assert tcache.evictions >= 1 or tcache.flushes >= 1
