"""Tests for the precise reference interpreter."""

from __future__ import annotations

import pytest

from repro.interp import Halted, Interpreter
from repro.interp.profile import ExecutionProfile
from repro.isa import flags as fl
from repro.isa.exceptions import IRQ_BASE, Vector
from repro.machine import CONSOLE_MMIO_BASE, Machine
from repro.state import FLAG_SLOTS, SimpleGuestState

CF = FLAG_SLOTS.index("cf")
ZF = FLAG_SLOTS.index("zf")
SF = FLAG_SLOTS.index("sf")
OF = FLAG_SLOTS.index("of")


def run_program(source: str, max_steps: int = 100_000,
                machine: Machine | None = None):
    machine = machine or Machine()
    entry = machine.load_source(source)
    state = SimpleGuestState()
    state.eip = entry
    interp = Interpreter(machine, state, ExecutionProfile())
    interp.run(max_steps)
    return machine, state, interp


class TestArithmetic:
    def test_add_and_flags(self):
        _, state, _ = run_program(
            "start: mov eax, 0xFFFFFFFF\nadd eax, 1\ncli\nhlt\n")
        assert state.get_reg(0) == 0
        assert state.get_flag(CF) and state.get_flag(ZF)

    def test_sub_borrow(self):
        _, state, _ = run_program("start: mov eax, 3\nsub eax, 5\ncli\nhlt\n")
        assert state.get_reg(0) == 0xFFFFFFFE
        assert state.get_flag(CF) and state.get_flag(SF)

    def test_cmp_does_not_write(self):
        _, state, _ = run_program("start: mov eax, 9\ncmp eax, 9\ncli\nhlt\n")
        assert state.get_reg(0) == 9
        assert state.get_flag(ZF)

    def test_adc_chain(self):
        # 64-bit add: 0xFFFFFFFF_FFFFFFFF + 1 = 0x1_00000000_00000000
        _, state, _ = run_program("""
        start:
            mov eax, 0xFFFFFFFF
            mov edx, 0xFFFFFFFF
            add eax, 1
            adc edx, 0
            cli
            hlt
        """)
        assert state.get_reg(0) == 0
        assert state.get_reg(2) == 0
        assert state.get_flag(CF)

    def test_sbb(self):
        _, state, _ = run_program("""
        start:
            mov eax, 0
            mov edx, 5
            sub eax, 1
            sbb edx, 0
            cli
            hlt
        """)
        assert state.get_reg(0) == 0xFFFFFFFF
        assert state.get_reg(2) == 4

    def test_mul_wide(self):
        _, state, _ = run_program("""
        start:
            mov eax, 0x10000
            mov ebx, 0x10000
            mul ebx
            cli
            hlt
        """)
        assert state.get_reg(0) == 0
        assert state.get_reg(2) == 1
        assert state.get_flag(CF) and state.get_flag(OF)

    def test_imul_truncates(self):
        _, state, _ = run_program("""
        start:
            mov eax, 0xFFFFFFFF   ; -1
            imul eax, 5
            cli
            hlt
        """)
        assert state.get_reg(0) == 0xFFFFFFFB  # -5

    def test_div(self):
        _, state, _ = run_program("""
        start:
            mov edx, 0
            mov eax, 47
            mov ecx, 5
            div ecx
            cli
            hlt
        """)
        assert state.get_reg(0) == 9
        assert state.get_reg(2) == 2

    def test_div_64bit_dividend(self):
        _, state, _ = run_program("""
        start:
            mov edx, 1          ; dividend = 0x1_00000000
            mov eax, 0
            mov ecx, 2
            div ecx
            cli
            hlt
        """)
        assert state.get_reg(0) == 0x80000000
        assert state.get_reg(2) == 0

    def test_idiv_negative(self):
        _, state, _ = run_program("""
        start:
            mov edx, 0xFFFFFFFF   ; sign extension of -7
            mov eax, 0xFFFFFFF9   ; -7
            mov ecx, 2
            idiv ecx
            cli
            hlt
        """)
        assert state.get_reg(0) == 0xFFFFFFFD  # -3 (truncate toward zero)
        assert state.get_reg(2) == 0xFFFFFFFF  # remainder -1

    def test_neg_inc_dec_not(self):
        _, state, _ = run_program("""
        start:
            mov eax, 5
            neg eax
            mov ebx, 7
            inc ebx
            mov ecx, 7
            dec ecx
            mov edx, 0
            not edx
            cli
            hlt
        """)
        assert state.get_reg(0) == 0xFFFFFFFB
        assert state.get_reg(3) == 8
        assert state.get_reg(1) == 6
        assert state.get_reg(2) == 0xFFFFFFFF

    def test_inc_preserves_cf(self):
        _, state, _ = run_program("""
        start:
            mov eax, 0xFFFFFFFF
            add eax, 1            ; sets CF
            inc eax               ; must not clear CF
            cli
            hlt
        """)
        assert state.get_flag(CF)

    def test_shifts(self):
        _, state, _ = run_program("""
        start:
            mov eax, 1
            shl eax, 4
            mov ebx, 0x80000000
            sar ebx, 31
            mov ecx, 3
            mov edx, 0xF0
            shr edx, cl
            cli
            hlt
        """)
        assert state.get_reg(0) == 16
        assert state.get_reg(3) == 0xFFFFFFFF
        assert state.get_reg(2) == 0x1E

    def test_shift_by_cl_zero_keeps_flags(self):
        _, state, _ = run_program("""
        start:
            mov eax, 0
            add eax, 0            ; ZF=1
            mov ecx, 32           ; cl & 31 == 0
            mov ebx, 5
            shl ebx, cl           ; no flag change
            cli
            hlt
        """)
        assert state.get_flag(ZF)

    def test_rotates(self):
        _, state, _ = run_program("""
        start:
            mov eax, 0x80000001
            rol eax, 1
            mov ebx, 1
            ror ebx, 1
            cli
            hlt
        """)
        assert state.get_reg(0) == 3
        assert state.get_reg(3) == 0x80000000

    def test_xchg(self):
        _, state, _ = run_program(
            "start: mov eax, 1\nmov ebx, 2\nxchg eax, ebx\ncli\nhlt\n")
        assert state.get_reg(0) == 2 and state.get_reg(3) == 1


class TestMemoryOps:
    def test_load_store_roundtrip(self):
        machine, state, _ = run_program("""
        start:
            mov ebx, 0x2000
            mov eax, 0x11223344
            store [ebx+4], eax
            load ecx, [ebx+4]
            storeb [ebx], ecx
            loadb edx, [ebx]
            cli
            hlt
        """)
        assert state.get_reg(1) == 0x11223344
        assert state.get_reg(2) == 0x44
        assert machine.ram.read32(0x2004) == 0x11223344

    def test_indexed_addressing(self):
        machine, state, _ = run_program("""
        start:
            mov ebx, 0x2000
            mov esi, 3
            mov eax, 99
            storex [ebx+esi*4], eax
            loadx edi, [ebx+esi*4]
            cli
            hlt
        """)
        assert machine.ram.read32(0x200C) == 99
        assert state.get_reg(7) == 99

    def test_storei(self):
        machine, _, _ = run_program("""
        start:
            mov ebx, 0x2000
            storei [ebx+8], 0xCAFEBABE
            cli
            hlt
        """)
        assert machine.ram.read32(0x2008) == 0xCAFEBABE

    def test_lea(self):
        _, state, _ = run_program("""
        start:
            mov ebx, 0x100
            mov ecx, 4
            lea eax, [ebx+0x20]
            lea edx, [ebx+ecx*8+4]
            cli
            hlt
        """)
        assert state.get_reg(0) == 0x120
        assert state.get_reg(2) == 0x100 + 32 + 4

    def test_stack(self):
        _, state, _ = run_program("""
        start:
            mov esp, 0x8000
            push 42
            mov eax, 7
            push eax
            pop ebx
            pop ecx
            cli
            hlt
        """)
        assert state.get_reg(3) == 7
        assert state.get_reg(1) == 42
        assert state.get_reg(4) == 0x8000

    def test_pushf_popf(self):
        _, state, _ = run_program("""
        start:
            mov esp, 0x8000
            mov eax, 0
            add eax, 0          ; ZF set
            pushf
            mov ebx, 1
            add ebx, 1          ; ZF clear
            popf
            cli
            hlt
        """)
        assert state.get_flag(ZF)


class TestControlFlow:
    def test_call_ret(self):
        _, state, _ = run_program("""
        start:
            mov esp, 0x8000
            call fn
            mov ebx, eax
            cli
            hlt
        fn:
            mov eax, 123
            ret
        """)
        assert state.get_reg(3) == 123
        assert state.get_reg(4) == 0x8000

    def test_indirect_jump(self):
        _, state, _ = run_program("""
        start:
            mov eax, target
            jmp eax
            mov ebx, 1      ; skipped
        target:
            mov ecx, 2
            cli
            hlt
        """)
        assert state.get_reg(3) == 0
        assert state.get_reg(1) == 2

    def test_indirect_call(self):
        _, state, _ = run_program("""
        start:
            mov esp, 0x8000
            mov eax, fn
            call eax
            cli
            hlt
        fn:
            mov ebx, 55
            ret
        """)
        assert state.get_reg(3) == 55

    def test_conditional_signed_vs_unsigned(self):
        _, state, _ = run_program("""
        start:
            mov eax, 0xFFFFFFFF   ; -1 signed, huge unsigned
            cmp eax, 1
            jl signed_less
            jmp done
        signed_less:
            mov ebx, 1
            cmp eax, 1
            ja unsigned_greater
            jmp done
        unsigned_greater:
            mov ecx, 1
        done:
            cli
            hlt
        """)
        assert state.get_reg(3) == 1
        assert state.get_reg(1) == 1

    def test_loop_counts(self):
        _, state, _ = run_program("""
        start:
            mov ecx, 0
        loop:
            inc ecx
            cmp ecx, 10
            jne loop
            cli
            hlt
        """)
        assert state.get_reg(1) == 10


class TestExceptions:
    def test_divide_error_vectors_to_handler(self):
        _, state, _ = run_program("""
        .org 0
        .word handler      ; vector 0 = #DE
        .org 0x1000
        start:
            mov esp, 0x8000
            mov eax, 1
            mov ecx, 0
            div ecx          ; #DE
        after:
            cli
            hlt
        handler:
            mov ebx, 0xDEAD
            ; skip the faulting div (2 bytes) by patching the return
            pop eax
            add eax, 2
            push eax
            mov eax, 0
            iret
        """)
        assert state.get_reg(3) == 0xDEAD

    def test_fault_pushes_faulting_eip(self):
        machine, state, _ = run_program("""
        .org 0
        .word handler
        .org 0x1000
        start:
            mov esp, 0x8000
            mov edx, 0
            mov eax, 5
            mov ecx, 0
            div ecx
        divsite:
            cli
            hlt
        handler:
            load ebx, [esp]   ; pushed EIP
            cli
            hlt
        """)
        # The pushed EIP is the faulting instruction (divsite - 2).
        div_addr = machine.instructions_retired  # not meaningful; recompute
        assert state.get_reg(3) != 0

    def test_invalid_opcode(self):
        _, state, _ = run_program("""
        .org 0x18            ; vector 6 = #UD at offset 24
        .word handler
        .org 0x1000
        start:
            mov esp, 0x8000
            .byte 0xFF       ; invalid opcode
        handler:
            mov ebx, 6
            cli
            hlt
        """)
        assert state.get_reg(3) == 6

    def test_gp_on_unmapped_physical(self):
        _, state, _ = run_program("""
        .org 13*4
        .word handler
        .org 0x1000
        start:
            mov esp, 0x8000
            mov ebx, 0x0F000000   ; far outside RAM, not MMIO
            load eax, [ebx]
        handler:
            mov ecx, 0x6B
            cli
            hlt
        """)
        assert state.get_reg(1) == 0x6B

    def test_software_interrupt(self):
        _, state, _ = run_program("""
        .org 0x20*4
        .word handler
        .org 0x1000
        start:
            mov esp, 0x8000
            int 0x20
            mov ecx, 2
            cli
            hlt
        handler:
            mov ebx, 1
            iret
        """)
        assert state.get_reg(3) == 1
        assert state.get_reg(1) == 2

    def test_halted_without_interrupts_raises(self):
        machine = Machine()
        entry = machine.load_source("start: cli\nhlt\n")
        state = SimpleGuestState()
        state.eip = entry
        interp = Interpreter(machine, state)
        with pytest.raises(Halted):
            for _ in range(10):
                interp.step()


class TestInterrupts:
    def test_timer_interrupt_delivered(self):
        source = f"""
        .org {IRQ_BASE * 4}
        .word handler
        .org 0x1000
        start:
            mov esp, 0x8000
            mov eax, 50
            out 0x40          ; timer period = 50
            mov eax, 1
            out 0x41          ; timer start
            sti
        spin:
            cmp edi, 0
            je spin
            cli
            hlt
        handler:
            mov edi, 1
            mov eax, 0x20
            out 0x20          ; EOI
            iret
        """
        _, state, interp = run_program(source)
        assert state.get_reg(7) == 1
        assert interp.interrupts_delivered >= 1

    def test_interrupts_masked_by_if(self):
        source = f"""
        .org {IRQ_BASE * 4}
        .word handler
        .org 0x1000
        start:
            mov esp, 0x8000
            mov eax, 10
            out 0x40
            mov eax, 1
            out 0x41
            cli               ; IF clear: no delivery
            mov ecx, 0
        loop:
            inc ecx
            cmp ecx, 100
            jne loop
            cli
            hlt
        handler:
            mov edi, 1
            iret
        """
        _, state, _ = run_program(source)
        assert state.get_reg(7) == 0

    def test_hlt_waits_for_interrupt(self):
        source = f"""
        .org {IRQ_BASE * 4}
        .word handler
        .org 0x1000
        start:
            mov esp, 0x8000
            mov eax, 20
            out 0x40
            mov eax, 1
            out 0x41
            sti
            hlt               ; wait for timer
            cli
            hlt
        handler:
            mov edi, 7
            mov eax, 0x20
            out 0x20
            iret
        """
        _, state, _ = run_program(source)
        assert state.get_reg(7) == 7


class TestMMIO:
    def test_console_mmio_write(self):
        machine, _, _ = run_program(f"""
        start:
            mov ebx, {CONSOLE_MMIO_BASE}
            mov eax, 'Z'
            storeb [ebx], eax
            cli
            hlt
        """)
        assert machine.console.output == "Z"

    def test_profile_records_mmio_site(self):
        machine = Machine()
        entry = machine.load_source(f"""
        start:
            mov ebx, {CONSOLE_MMIO_BASE}
            storeb [ebx], eax
            cli
            hlt
        """)
        state = SimpleGuestState()
        state.eip = entry
        profile = ExecutionProfile()
        interp = Interpreter(machine, state, profile)
        interp.run()
        assert len(profile.mmio_sites) == 1


class TestPaging:
    def test_identity_paging_roundtrip(self):
        _, state, _ = run_program("""
        PT = 0x100000
        start:
            ; build identity PTEs for the first 16 pages
            mov ebx, PT
            mov ecx, 0
        build:
            mov eax, ecx
            shl eax, 12
            or eax, 3          ; present | writable
            storex [ebx+ecx*4], eax
            inc ecx
            cmp ecx, 16
            jne build
            mov eax, PT
            setpt eax
            pgon
            mov edx, 0x1234
            pgoff
            cli
            hlt
        """)
        assert state.get_reg(2) == 0x1234

    def test_page_fault_delivery(self):
        _, state, _ = run_program("""
        PT = 0x100000
        .org 14*4
        .word handler
        .org 0x1000
        start:
            mov esp, 0x8000
            mov ebx, PT
            mov ecx, 0
        build:
            mov eax, ecx
            shl eax, 12
            or eax, 3
            storex [ebx+ecx*4], eax
            inc ecx
            cmp ecx, 16
            jne build
            mov eax, PT
            setpt eax
            pgon
            mov ebx, 0x20000    ; VPN 32: not mapped
            load eax, [ebx]
        handler:
            pgoff
            pop esi             ; error code
            mov edi, 0xBAD
            cli
            hlt
        """)
        assert state.get_reg(7) == 0xBAD
        assert state.get_reg(6) & 0x1 == 0  # not-present fault
