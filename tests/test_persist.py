"""Persistence-layer tests (PR 5): snapshot save, load, revalidate.

The warm-start contract under test:

* a snapshot written at shutdown reloads into a fresh system as a
  byte-identical payload (save/load/save is a fixpoint);
* every reloaded translation is revalidated against current guest RAM
  §3.6.2-style — a one-byte code mutation drops exactly the
  translations whose recorded ranges overlap the mutated byte, never
  fewer (stale code must not run) and never more (unrelated work is
  kept);
* corrupted, truncated, or version-mismatched files are rejected whole
  before anything is applied, and the system still boots cold;
* a warm run is architecturally invisible: identical console output
  and final state, with (almost) no translator invocations.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import CMSConfig, CodeMorphingSystem, Machine
from repro.cache import persist
from repro.cache.persist import (
    SNAPSHOT_VERSION,
    SnapshotError,
    inspect_snapshot,
    read_snapshot_file,
)

FAST = CMSConfig(translation_threshold=4, fault_threshold=2)

# Two hot loops => at least two distinct translated regions with
# disjoint code ranges, so revalidation drops can be selective.
PROGRAM = """
start:
    mov eax, 0
    mov ecx, 0
first:
    add eax, 7
    rol eax, 3
    inc ecx
    cmp ecx, 40
    jl first
    mov esi, 0
    mov ecx, 0
second:
    add esi, eax
    xor esi, 0x5a5a5a5a
    inc ecx
    cmp ecx, 40
    jl second
    cli
    hlt
"""


def cold_save(path: str, source: str = PROGRAM,
              config: CMSConfig = FAST):
    """Run a cold session that saves a snapshot at shutdown."""
    cfg = replace(config, snapshot_path=path, snapshot_save=True)
    machine = Machine()
    entry = machine.load_source(source)
    system = CodeMorphingSystem(machine, cfg)
    result = system.run(entry)
    system.shutdown()
    return system, result


def warm_system(path: str, source: str = PROGRAM,
                config: CMSConfig = FAST, mutate: int | None = None):
    """Build a fresh machine (optionally flipping one code byte) and a
    system that loads the snapshot at construction."""
    cfg = replace(config, snapshot_path=path)
    machine = Machine()
    entry = machine.load_source(source)
    if mutate is not None:
        original = machine.ram.read_bytes(mutate, 1)[0]
        machine.ram.write_bytes(mutate, bytes([original ^ 0xFF]))
    system = CodeMorphingSystem(machine, cfg)
    return system, entry


def run_reference(source: str, mutate_with: bytes | None = None,
                  mutate_at: int | None = None):
    machine = Machine()
    entry = machine.load_source(source)
    if mutate_at is not None:
        machine.ram.write_bytes(mutate_at, mutate_with)
    system = CodeMorphingSystem(machine, FAST.interpreter_only())
    result = system.run(entry)
    return system, result


@pytest.fixture
def snap_path(tmp_path):
    return str(tmp_path / "warm.cms-snapshot.json")


# Shared snapshot for the hypothesis properties: built once, read-only.
_SHARED: dict = {}


def shared_snapshot():
    if not _SHARED:
        handle, path = tempfile.mkstemp(suffix=".cms-snapshot.json")
        os.close(handle)
        os.unlink(path)
        system, result = cold_save(path)
        assert result.halted
        _SHARED["path"] = path
        _SHARED["payload"] = read_snapshot_file(path)
        with open(path, "rb") as fh:
            _SHARED["raw"] = fh.read()
        _SHARED["final_state"] = system.state.snapshot()
        _SHARED["console"] = result.console_output
        _SHARED["translations_cold"] = system.stats.translations_made
    return _SHARED


class TestRoundTrip:
    def test_cold_run_saves_a_valid_file(self, snap_path):
        system, result = cold_save(snap_path)
        assert result.halted
        assert system.stats.translations_made >= 2
        payload = read_snapshot_file(snap_path)
        assert payload["translations"]
        assert payload["resident"]
        info = inspect_snapshot(snap_path)
        assert info["resident"] == len(payload["resident"])

    def test_warm_load_registers_everything(self, snap_path):
        cold_save(snap_path)
        payload = read_snapshot_file(snap_path)
        system, _ = warm_system(snap_path)
        report = system.snapshot_report
        assert system.snapshot_error is None
        assert report is not None
        assert report.loaded == len(payload["resident"])
        assert report.dropped == 0
        assert system.stats.snapshot_translations_loaded == report.loaded
        for index in payload["resident"]:
            entry = payload["translations"][index]["entry_eip"]
            assert system.tcache.lookup(entry) is not None

    def test_warm_run_is_architecturally_invisible(self, snap_path):
        cold, cold_result = cold_save(snap_path)
        system, entry = warm_system(snap_path)
        warm_result = system.run(entry)
        assert warm_result.halted
        assert warm_result.console_output == cold_result.console_output
        assert system.state.snapshot() == cold.state.snapshot()
        # The point of warm start: the translator (almost) never runs.
        assert system.stats.translations_made < \
            cold.stats.translations_made

    def test_save_load_save_is_a_fixpoint(self, snap_path):
        cold_save(snap_path)
        saved = read_snapshot_file(snap_path)
        system, _ = warm_system(snap_path)
        rebuilt = persist.build_payload(system)
        assert persist._canonical(rebuilt) == persist._canonical(saved)

    def test_chain_patches_not_persisted(self, snap_path):
        cold_save(snap_path)
        system, _ = warm_system(snap_path)
        for translation in system.tcache.translations():
            assert not translation.incoming_chains
            for atom in translation.exit_atoms:
                assert atom.chained_translation is None


class TestRevalidation:
    def test_mutated_immediate_drops_only_its_region(self, snap_path):
        """Patch the imm32 of the second loop: the translation covering
        it is dropped at load, the first loop's survives, and the warm
        run matches the interpreter on the mutated image."""
        cold_save(snap_path)
        payload = read_snapshot_file(snap_path)
        machine = Machine()
        entry = machine.load_source(PROGRAM)
        ram = machine.ram.read_bytes(0, machine.ram.size)
        imm_addr = ram.find(bytes([0x5A] * 4))
        assert imm_addr > 0
        machine.ram.write_bytes(imm_addr, b"\x11")
        system = CodeMorphingSystem(
            machine, replace(FAST, snapshot_path=snap_path))
        report = system.snapshot_report
        expected_drops = {
            payload["translations"][i]["entry_eip"]
            for i in payload["resident"]
            if any(s <= imm_addr < s + n
                   for s, n in payload["translations"][i]["code_ranges"])
        }
        assert expected_drops, "immediate was not inside any translation"
        assert set(report.dropped_entries) == expected_drops
        assert report.loaded == len(payload["resident"]) - \
            len(report.dropped_entries)
        for dropped in report.dropped_entries:
            assert system.tcache.lookup(dropped) is None
        result = system.run(entry)
        ref_system, ref_result = run_reference(
            PROGRAM, mutate_with=b"\x11", mutate_at=imm_addr)
        assert result.halted and ref_result.halted
        assert result.console_output == ref_result.console_output
        assert system.state.snapshot() == ref_system.state.snapshot()

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.data())
    def test_one_byte_mutation_drops_exactly_overlapping(self, data):
        shared = shared_snapshot()
        payload = shared["payload"]
        ranges = [tuple(r)
                  for i in payload["resident"]
                  for r in payload["translations"][i]["code_ranges"]]
        start, length = data.draw(st.sampled_from(ranges))
        addr = start + data.draw(
            st.integers(min_value=0, max_value=length - 1))
        system, _ = warm_system(shared["path"], mutate=addr)
        report = system.snapshot_report
        expected = {
            payload["translations"][i]["entry_eip"]
            for i in payload["resident"]
            if any(s <= addr < s + n
                   for s, n in payload["translations"][i]["code_ranges"])
        }
        assert expected  # the byte came from a recorded range
        assert set(report.dropped_entries) == expected
        assert report.loaded + report.dropped == len(payload["resident"])
        for entry in expected:
            assert system.tcache.lookup(entry) is None


class TestRejection:
    def _reject(self, tmp_path, blob: bytes):
        path = str(tmp_path / "bad.json")
        with open(path, "wb") as fh:
            fh.write(blob)
        with pytest.raises(SnapshotError):
            read_snapshot_file(path)
        # The system must still come up cold (error captured, not
        # raised) and run normally.
        machine = Machine()
        entry = machine.load_source(PROGRAM)
        system = CodeMorphingSystem(
            machine, replace(FAST, snapshot_path=path))
        assert system.snapshot_error is not None
        assert system.snapshot_report is None
        assert system.stats.snapshot_translations_loaded == 0
        assert system.run(entry).halted

    def test_missing_file_is_a_cold_start(self, tmp_path):
        path = str(tmp_path / "never-written.json")
        machine = Machine()
        machine.load_source(PROGRAM)
        system = CodeMorphingSystem(
            machine, replace(FAST, snapshot_path=path))
        assert system.snapshot_error is None
        assert system.snapshot_report is None

    def test_garbage_rejected(self, tmp_path):
        self._reject(tmp_path, b"\x00\x01\x02 not json")

    def test_wrong_format_rejected(self, tmp_path):
        blob = json.dumps({"format": "something-else", "version": 1,
                           "checksum": "", "payload": {}}).encode()
        self._reject(tmp_path, blob)

    def test_future_version_rejected(self, tmp_path):
        raw = dict(json.loads(shared_snapshot()["raw"]))
        raw["version"] = SNAPSHOT_VERSION + 1
        self._reject(tmp_path, json.dumps(raw).encode())

    def test_checksum_mismatch_rejected(self, tmp_path):
        raw = dict(json.loads(shared_snapshot()["raw"]))
        raw["payload"] = dict(raw["payload"])
        raw["payload"]["resident"] = []
        self._reject(tmp_path, json.dumps(raw).encode())

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.data())
    def test_random_corruption_rejected(self, data):
        """Flip one non-whitespace byte, or truncate anywhere before
        the closing brace: the file must be rejected whole."""
        blob = bytearray(shared_snapshot()["raw"])
        if data.draw(st.booleans()):
            positions = [i for i, b in enumerate(blob)
                         if b not in b" \t\r\n"]
            pos = data.draw(st.sampled_from(positions))
            blob[pos] ^= 0xFF
            corrupted = bytes(blob)
        else:
            cut = data.draw(st.integers(min_value=0,
                                        max_value=len(blob) - 2))
            corrupted = bytes(blob[:cut])
        handle, path = tempfile.mkstemp(suffix=".json")
        try:
            with os.fdopen(handle, "wb") as fh:
                fh.write(corrupted)
            with pytest.raises(SnapshotError):
                read_snapshot_file(path)
        finally:
            os.unlink(path)

    def test_strict_config_mismatch_rejected_whole(self, snap_path):
        cold_save(snap_path)
        other = replace(FAST, translation_threshold=9,
                        snapshot_path=snap_path)
        machine = Machine()
        machine.load_source(PROGRAM)
        system = CodeMorphingSystem(machine, other)
        assert system.snapshot_error is not None
        assert "configuration" in str(system.snapshot_error)
        assert system.stats.snapshot_translations_loaded == 0
        assert len(system.tcache) == 0

    def test_lenient_config_mismatch_loads_anyway(self, snap_path):
        cold_save(snap_path)
        other = replace(FAST, translation_threshold=9,
                        snapshot_path=snap_path,
                        snapshot_strict_config=False)
        machine = Machine()
        machine.load_source(PROGRAM)
        system = CodeMorphingSystem(machine, other)
        assert system.snapshot_error is None
        assert system.snapshot_report is not None
        assert not system.snapshot_report.config_matched
        assert system.stats.snapshot_translations_loaded > 0


class TestWarmEquivalenceProperty:
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(min_value=0, max_value=2 ** 32 - 1),
           st.integers(min_value=3, max_value=9),
           st.integers(min_value=5, max_value=60))
    def test_warm_molecule_stream_matches_reference(
            self, seed, increment, trips):
        """Random loop parameters: the warm run (reloading whatever the
        cold run persisted) must match the pure interpreter exactly."""
        source = f"""
start:
    mov eax, {seed:#x}
    mov ecx, 0
body:
    add eax, {increment}
    rol eax, 1
    xor eax, {seed ^ 0xA5A5A5A5:#x}
    inc ecx
    cmp ecx, {trips}
    jl body
    cli
    hlt
"""
        handle, path = tempfile.mkstemp(suffix=".cms-snapshot.json")
        os.close(handle)
        os.unlink(path)
        try:
            cold_save(path, source=source)
            system, entry = warm_system(path, source=source)
            result = system.run(entry)
            ref_system, ref_result = run_reference(source)
            assert result.halted and ref_result.halted
            assert result.console_output == ref_result.console_output
            assert system.state.snapshot() == ref_system.state.snapshot()
        finally:
            if os.path.exists(path):
                os.unlink(path)

    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(min_value=3, max_value=12),
           st.sampled_from([8, 16, 24]))
    def test_fixpoint_across_dials(self, threshold, commit):
        config = replace(FAST, translation_threshold=threshold,
                         commit_interval=commit)
        handle, path = tempfile.mkstemp(suffix=".cms-snapshot.json")
        os.close(handle)
        os.unlink(path)
        try:
            cold_save(path, config=config)
            saved = read_snapshot_file(path)
            system, _ = warm_system(path, config=config)
            rebuilt = persist.build_payload(system)
            assert persist._canonical(rebuilt) == \
                persist._canonical(saved)
        finally:
            if os.path.exists(path):
                os.unlink(path)
