"""Repository hygiene: .gitignore must never swallow tracked sources.

A stale or unanchored .gitignore pattern (say, a module path that was
later promoted from generated artifact to real source) silently drops
files from future commits — `git add` skips them and nobody notices
until a fresh clone breaks.  This pins the invariant structurally:
no file git currently tracks may match .gitignore.
"""

from __future__ import annotations

import shutil
import subprocess
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def _git(*argv: str, **kwargs) -> subprocess.CompletedProcess:
    return subprocess.run(["git", "-C", str(REPO_ROOT), *argv],
                          capture_output=True, text=True, **kwargs)


def _require_git_repo() -> None:
    if shutil.which("git") is None:
        pytest.skip("git not installed")
    if _git("rev-parse", "--is-inside-work-tree").returncode != 0:
        pytest.skip("not running from a git checkout")


def test_no_tracked_file_is_gitignored():
    _require_git_repo()
    tracked = _git("ls-files").stdout
    assert tracked.strip(), "git ls-files returned nothing"
    # Exit 0: some path matched an ignore pattern; 1: none did.
    result = _git("check-ignore", "--stdin", "--no-index", input=tracked)
    offenders = [line for line in result.stdout.splitlines() if line]
    assert not offenders, (
        ".gitignore matches tracked files (stale/unanchored pattern?): "
        + ", ".join(offenders[:10])
    )


def test_benchmark_report_artifacts_are_ignored():
    _require_git_repo()
    # The CI lanes generate these at the repo root; they must never be
    # committable by accident, while the baselines stay tracked.
    for artifact in ("BENCH_scenarios.json", "BENCH_wallclock.json",
                     "telemetry.jsonl"):
        assert _git("check-ignore", "-q", artifact).returncode == 0, (
            f"{artifact} (root CI artifact) is not gitignored"
        )
    assert _git("check-ignore", "-q",
                "benchmarks/baselines/BENCH_scenarios.json").returncode == 1, (
        "the committed baseline must not be gitignored"
    )
