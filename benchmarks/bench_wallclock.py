"""Wall-clock performance of the simulator itself.

Every other benchmark in this directory compares *molecule counts* —
the paper's metric, measuring the quality of the code CMS generates.
This one times the *host*: how many guest instructions per second the
reproduction retires, and how much the engineering dials in
``CMSConfig`` (decode cache, fast bus routing, dispatcher fast paths,
and the template JIT) buy over the seed's execution paths.  The two
metrics are deliberately orthogonal: every row below asserts that
console output and molecule counts are bit-identical with the
optimizations on and off, so the dials can never change *what* is
computed, only how fast the host computes it.

Coverage: one boot (``dos_boot``), one app kernel (``compress``), and
one SMC-heavy workload (``quake_demo2``, the self-modifying renderer).
Each translating row also times an interpreter-only run of the same
workload, and the **headline gate** asserts the paper's premise holds
in wall-clock terms: with the template JIT on, the CMS path beats
interpretation on every workload (``cms_vs_interp_speedup >= 1.0``,
measured margins are 2-4x).  The interpreter-dominated quake row keeps
its own 2x optimized-vs-seed gate.

The ablation attributes the win per dial, each measured best-of-3 on a
run mode where its mechanism is actually live (the template JIT is a
no-op interpreter-only; the decode cache is most of the interpreter's
win).  ``decode_cache`` and ``template_jit`` have decisive margins and
hard floors; ``fast_bus_routing`` and ``fast_dispatch`` buy only a few
percent at workload scale — below run-to-run noise — so their rows
gate at "never hurts" (>= 0.9 best-of-3) and the routing win is
instead asserted deterministically by a mechanism-level
micro-benchmark (bisect + RAM-limit short-circuit vs the seed's linear
scan over a mixed RAM/MMIO address sample).

Superblock traces change the comparison's character: unlike the host
dials above, trace formation changes *what code CMS generates*, so
molecule counts legitimately differ with traces on and off.  The trace
section therefore asserts console identity only, and reports both
metrics sides by side: wall clock (best of 3 per side) and the
deterministic code-quality counters — executed host molecules, the
end-to-end mol/instr metric, and the scheduler cost model's modeled
cycles per translated instruction (``modeled_cycles_translated /
guest_instructions_translated``), all pinned exactly by the perf gate
at fixed budget.  The full-budget gates put the teeth where the signal
is: every workload that forms a trace must *execute* strictly fewer
host molecules with traces on (the unroll judge's promise, checked
end-to-end), at least one workload must improve the paper's mol/instr
metric outright (quake_demo2 — long enough that the one-time
translation charge amortizes), and wall clock may never fall below the
never-catastrophic floor.  Wall-clock *improvement* is reported but
floor-gated only at 0.9x: the measured execution win (7-19% fewer
molecules) is worth a few percent of host time at these run lengths,
which is inside run-to-run noise on a shared runner (see
EXPERIMENTS.md, "Trace formation").

Results land in three places: the usual ``results.txt`` table, a
machine-readable ``BENCH_wallclock.json`` at the repo root, and the
pytest output.  ``REPRO_WALLCLOCK_BUDGET=<n>`` caps every run at n
guest instructions for CI smoke runs; with a reduced budget every
timing assertion is skipped (startup costs dominate tiny runs) but
identity and report shape are still checked.
"""

from __future__ import annotations

import json
import os
import time

from common import BASELINE, emit_telemetry, print_table, run_timed

JSON_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                         "BENCH_wallclock.json")

# (workload, role, interpreter-only?) rows.  The interpreter-only
# quake_demo2 row is the "interpreter-dominated workload" of the
# original acceptance criterion: no translations, every instruction
# through decode+dispatch, SMC stores invalidating the decode cache.
ROWS = [
    ("dos_boot", "boot", False),
    ("compress", "app", False),
    ("quake_demo2", "smc", False),
    ("quake_demo2", "interp", True),
]
INTERP_DOMINATED = ("quake_demo2", True)

MIN_SPEEDUP = 2.0  # interp-dominated row, optimized vs seed paths
MIN_CMS_SPEEDUP = 1.0  # every workload: CMS path vs interpreter-only

# Per-dial ablation: (dial, workload, interp_only?, min slowdown_without).
# Each dial is measured on a mode where its mechanism is exercised;
# floors below 1.0 are noise guards for percent-level dials (see module
# docstring), not claims that the dial is free.
ABLATIONS = (
    ("decode_cache", "compress", True, 1.3),
    ("fast_dispatch", "compress", True, 0.85),
    ("fast_bus_routing", "multimedia", True, 0.85),
    ("template_jit", "compress", False, 1.5),
    # The software TLB is live on any paged workload: with it off,
    # every access (and every dispatcher mapping probe) walks the
    # guest page table through the bus.
    ("mmu_tlb", "dos_boot", True, 0.85),
)
ABLATION_ROUNDS = 3  # best-of-N timing for every ablation config

MIN_ROUTING_MICRO_SPEEDUP = 1.2  # bisect routing vs linear scan

# Superblock traces (PR 7): on/off per workload, best-of-3 each side.
# quake_demo2 is the workload where the mechanism pays off end to end
# (hot render loops promote to unrolled traces and the run is long
# enough to amortize the translation charge); compress and dos_boot
# mostly measure that trace formation never costs more than the floor
# allows.
TRACE_ROWS = ("compress", "dos_boot", "quake_demo2")
MIN_TRACE_BEST_SPEEDUP = 0.9  # the best row must be near-par or better
# Per-row catastrophe floor only: in-suite timing (one long-lived pytest
# process, dozens of runs of allocator/GC pressure ahead of this bench)
# swings individual rows far more than standalone best-of-3 does —
# quake has measured 0.67x in-suite minutes after 1.06x standalone.
MIN_TRACE_FLOOR = 0.5


def _budget() -> int | None:
    raw = os.environ.get("REPRO_WALLCLOCK_BUDGET", "").strip()
    if not raw:
        return None
    try:
        budget = int(raw)
    except ValueError:
        raise SystemExit(
            f"REPRO_WALLCLOCK_BUDGET must be an instruction count, "
            f"got {raw!r}") from None
    if budget <= 0:
        raise SystemExit(
            f"REPRO_WALLCLOCK_BUDGET must be positive, got {budget}")
    return budget


def _config(interp_only: bool, **dials):
    config = BASELINE.interpreter_only() if interp_only else BASELINE
    if dials:
        from dataclasses import replace
        config = replace(config, **dials)
    return config


def _modeled_per_instr(result) -> float:
    """Modeled cycles per *translated* guest instruction — the static
    schedule-quality counter, deterministic for a fixed budget."""
    stats = result.system.stats
    if not stats.guest_instructions_translated:
        return 0.0
    return round(stats.modeled_cycles_translated
                 / stats.guest_instructions_translated, 4)


def _measure(name: str, interp_only: bool, budget: int | None) -> dict:
    optimized = _config(interp_only)
    seed = optimized.seed_performance()
    seed_secs, seed_result = run_timed(name, seed, budget)
    opt_secs, opt_result = run_timed(name, optimized, budget)
    # The dials must be invisible to everything the paper measures.
    # With the template JIT among them, this doubles as a system-level
    # JIT-vs-simulated-VLIW identity check on every benchmark workload.
    assert opt_result.console_output == seed_result.console_output, (
        f"{name}: console output diverged with optimizations on"
    )
    assert opt_result.total_molecules == seed_result.total_molecules, (
        f"{name}: molecule counts diverged with optimizations on"
    )
    assert opt_result.guest_instructions == seed_result.guest_instructions
    instructions = opt_result.guest_instructions
    row = {
        "config": "interp-only" if interp_only else "baseline",
        "guest_instructions": instructions,
        "seed_seconds": round(seed_secs, 4),
        "optimized_seconds": round(opt_secs, 4),
        "seed_ips": round(instructions / seed_secs) if seed_secs else 0,
        "optimized_ips": round(instructions / opt_secs) if opt_secs else 0,
        "speedup": round(seed_secs / opt_secs, 3) if opt_secs else 0.0,
        "molecules_per_instruction": round(opt_result.mpx, 3),
        "identical_output": True,
    }
    if not interp_only:
        # The headline measurement: the translating CMS path against a
        # pure-interpretation run of the same guest.
        interp_secs, interp_result = run_timed(
            name, _config(True), budget)
        assert interp_result.console_output == opt_result.console_output, (
            f"{name}: console output diverged vs the interpreter"
        )
        row["interp_seconds"] = round(interp_secs, 4)
        row["cms_vs_interp_speedup"] = (
            round(interp_secs / opt_secs, 3) if opt_secs else 0.0
        )
        row["jit_dispatches"] = opt_result.system.stats.jit_dispatches
        row["modeled_cycles_per_instr"] = _modeled_per_instr(opt_result)
    return row


def _best_of(name: str, config, budget: int | None,
             rounds: int = ABLATION_ROUNDS) -> tuple[float, object]:
    best_secs, best_result = run_timed(name, config, budget)
    for _ in range(rounds - 1):
        secs, result = run_timed(name, config, budget)
        if secs < best_secs:
            best_secs, best_result = secs, result
    return best_secs, best_result


def _ablate(budget: int | None) -> dict:
    """Per-dial attribution: all-on vs exactly one dial off, each on a
    run mode where the dial's mechanism is live, best-of-N both sides."""
    out = {}
    all_on_cache: dict[tuple[str, bool], tuple[float, object]] = {}
    for dial, name, interp_only, minimum in ABLATIONS:
        key = (name, interp_only)
        if key not in all_on_cache:
            all_on_cache[key] = _best_of(name, _config(interp_only), budget)
        all_on_secs, all_on = all_on_cache[key]
        secs, result = _best_of(
            name, _config(interp_only, **{dial: False}), budget)
        assert result.console_output == all_on.console_output, dial
        assert result.total_molecules == all_on.total_molecules, dial
        out[dial] = {
            "workload": name,
            "mode": "interp-only" if interp_only else "baseline",
            "all_on_seconds": round(all_on_secs, 4),
            "seconds_without": round(secs, 4),
            "slowdown_without": round(secs / all_on_secs, 3)
            if all_on_secs else 0.0,
            "min_slowdown": minimum,
        }
    return out


def _trace_compare(budget: int | None) -> dict:
    """Trace formation on vs off, best-of-N wall clock per side.

    Console output must be identical — traces may change the generated
    code (molecule counts differ by design) but never what the guest
    computes.  Alongside wall clock, each row reports the cost model's
    modeled cycles per translated instruction and the trace-shape
    counters, all deterministic at fixed budget."""
    from dataclasses import replace

    out = {}
    for name in TRACE_ROWS:
        on_secs, on = _best_of(name, BASELINE, budget)
        off_secs, off = _best_of(
            name, replace(BASELINE, trace_formation=False), budget)
        assert on.console_output == off.console_output, (
            f"{name}: console output diverged with trace formation on"
        )
        assert on.guest_instructions == off.guest_instructions, (
            f"{name}: guest instruction counts diverged with traces on"
        )
        stats = on.system.stats
        out[name] = {
            "on_seconds": round(on_secs, 4),
            "off_seconds": round(off_secs, 4),
            "trace_speedup": round(off_secs / on_secs, 3)
            if on_secs else 0.0,
            "host_molecules_on": stats.host_molecules,
            "host_molecules_off": off.system.stats.host_molecules,
            "mpx_on": round(on.mpx, 3),
            "mpx_off": round(off.mpx, 3),
            "modeled_cycles_per_instr_on": _modeled_per_instr(on),
            "modeled_cycles_per_instr_off": _modeled_per_instr(off),
            "traces_formed": stats.traces_formed,
            "trace_promotions": stats.trace_promotions,
            "trace_splits": stats.trace_splits,
            "identical_output": True,
        }
    return out


def _routing_micro() -> dict:
    """Mechanism-level gate for ``fast_bus_routing``: the bisect +
    RAM-limit routing must beat the seed's linear region scan on a
    mixed RAM/MMIO address sample.  Deterministic where the workload
    ablation is percent-level noise."""
    from repro.machine import Machine

    bus = Machine().bus
    addrs = (
        [(i * 7919) % (1 << 22) for i in range(2048)]
        + [0xFFF00000 + (i % 4096) for i in range(512)]
        + [0x000A0000 + (i % 65536) for i in range(512)]
    )

    def sweep(fast: bool) -> float:
        bus.set_fast_routing(fast)
        best = float("inf")
        for _ in range(ABLATION_ROUNDS):
            start = time.perf_counter()
            for _ in range(20):
                for addr in addrs:
                    bus.is_io(addr, 4)
            best = min(best, time.perf_counter() - start)
        return best

    sweep(True)  # warm up allocator/caches off the books
    fast_secs = sweep(True)
    linear_secs = sweep(False)
    return {
        "fast_seconds": round(fast_secs, 4),
        "linear_seconds": round(linear_secs, 4),
        "micro_speedup": round(linear_secs / fast_secs, 3)
        if fast_secs else 0.0,
    }


def _collect() -> dict:
    budget = _budget()
    workloads = {}
    for name, role, interp_only in ROWS:
        key = f"{name}:{'interp' if interp_only else 'baseline'}"
        workloads[key] = {"workload": name, "role": role,
                          **_measure(name, interp_only, budget)}
    return {
        "budget": budget,
        "workloads": workloads,
        "ablation": _ablate(budget),
        "traces": _trace_compare(budget),
        "routing_micro": _routing_micro(),
    }


def test_wallclock(benchmark):
    report = benchmark.pedantic(_collect, rounds=1, iterations=1)
    _emit(report)
    _check(report)


def _emit(report: dict) -> None:
    with open(JSON_PATH, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    emit_telemetry("bench-wallclock", report)
    table = []
    for key, row in report["workloads"].items():
        cms = row.get("cms_vs_interp_speedup")
        vs_interp = f"  vs-interp {cms:.2f}x" if cms is not None else ""
        table.append((
            key,
            f"{row['optimized_ips']:>9,} ips  "
            f"(seed {row['seed_ips']:>9,})  "
            f"speedup {row['speedup']:.2f}x{vs_interp}",
        ))
    for dial, entry in report["ablation"].items():
        table.append((
            f"ablate {dial}",
            f"{entry['slowdown_without']:.2f}x slower without  "
            f"({entry['workload']}, {entry['mode']}, "
            f"best of {ABLATION_ROUNDS})",
        ))
    for name, entry in report["traces"].items():
        saved = 1.0 - (entry["host_molecules_on"]
                       / entry["host_molecules_off"]
                       if entry["host_molecules_off"] else 1.0)
        table.append((
            f"traces {name}",
            f"{entry['trace_speedup']:.2f}x vs traces-off  "
            f"({saved:.1%} fewer molecules executed, "
            f"mpx {entry['mpx_on']:.2f} vs {entry['mpx_off']:.2f}, "
            f"modeled {entry['modeled_cycles_per_instr_on']:.2f} vs "
            f"{entry['modeled_cycles_per_instr_off']:.2f} cyc/instr, "
            f"{entry['traces_formed']} traces)",
        ))
    micro = report["routing_micro"]
    table.append((
        "routing micro",
        f"bisect {micro['micro_speedup']:.2f}x vs linear scan",
    ))
    budget = report["budget"]
    print_table(
        "Wall-clock (host instructions/second, optimizations vs seed)",
        table,
        footer=f"budget={'full' if budget is None else budget}; "
               "output and molecule counts identical in every row",
    )


def _check(report: dict) -> None:
    key = (f"{INTERP_DOMINATED[0]}:"
           f"{'interp' if INTERP_DOMINATED[1] else 'baseline'}")
    dominated = report["workloads"][key]
    for row in report["workloads"].values():
        assert row["identical_output"]
        assert row["optimized_ips"] > 0
    for entry in report["traces"].values():
        assert entry["identical_output"]
    if report["budget"] is not None:
        return  # CI smoke: identity and shape only; timing is noise.
    assert dominated["speedup"] >= MIN_SPEEDUP, (
        f"interpreter-dominated speedup {dominated['speedup']:.2f}x "
        f"< {MIN_SPEEDUP}x"
    )
    # The headline gate: the CMS path must beat interpretation in
    # wall-clock terms on every workload (the paper's premise).
    for key, row in report["workloads"].items():
        cms = row.get("cms_vs_interp_speedup")
        if cms is None:
            continue
        assert cms >= MIN_CMS_SPEEDUP, (
            f"{key}: CMS path is slower than the interpreter "
            f"({cms:.3f}x < {MIN_CMS_SPEEDUP}x)"
        )
        assert row["jit_dispatches"] > 0, (
            f"{key}: template JIT never dispatched on a translating run"
        )
    for dial, entry in report["ablation"].items():
        assert entry["slowdown_without"] >= entry["min_slowdown"], (
            f"ablation {dial}: {entry['slowdown_without']:.3f}x < "
            f"{entry['min_slowdown']}x on {entry['workload']} "
            f"({entry['mode']})"
        )
    # Trace formation.  The deterministic gates carry the claim: every
    # workload that formed a trace must execute strictly fewer host
    # molecules, and at least one must improve end-to-end mol/instr
    # (amortizing its translation charge).  Wall clock is floor-gated
    # only — the few-percent execution win is real but inside runner
    # noise at these run lengths.
    mpx_improved = []
    for name, entry in report["traces"].items():
        if entry["traces_formed"]:
            assert entry["host_molecules_on"] < \
                entry["host_molecules_off"], (
                    f"traces {name}: formed {entry['traces_formed']} "
                    f"traces yet executed no fewer molecules "
                    f"({entry['host_molecules_on']} vs "
                    f"{entry['host_molecules_off']})"
                )
        if entry["mpx_on"] < entry["mpx_off"]:
            mpx_improved.append(name)
    assert mpx_improved, (
        "no workload improved mol/instr with traces on: "
        + str({name: (entry["mpx_on"], entry["mpx_off"])
               for name, entry in report["traces"].items()})
    )
    trace_speedups = {name: entry["trace_speedup"]
                      for name, entry in report["traces"].items()}
    best = max(trace_speedups.values())
    assert best >= MIN_TRACE_BEST_SPEEDUP, (
        f"every workload regressed past near-par with traces on "
        f"(best {best:.3f}x < {MIN_TRACE_BEST_SPEEDUP}x: "
        f"{trace_speedups})"
    )
    for name, speedup in trace_speedups.items():
        assert speedup >= MIN_TRACE_FLOOR, (
            f"traces {name}: {speedup:.3f}x < floor {MIN_TRACE_FLOOR}x"
        )
    micro = report["routing_micro"]
    assert micro["micro_speedup"] >= MIN_ROUTING_MICRO_SPEEDUP, (
        f"routing micro-benchmark: bisect only "
        f"{micro['micro_speedup']:.2f}x vs linear "
        f"(< {MIN_ROUTING_MICRO_SPEEDUP}x)"
    )


if __name__ == "__main__":
    report = _collect()
    _emit(report)
    _check(report)
    print("ok")
