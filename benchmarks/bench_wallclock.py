"""Wall-clock performance of the simulator itself.

Every other benchmark in this directory compares *molecule counts* —
the paper's metric, measuring the quality of the code CMS generates.
This one times the *host*: how many guest instructions per second the
reproduction retires, and how much the engineering dials in
``CMSConfig`` (decode cache, fast bus routing, dispatcher fast paths)
buy over the seed's execution paths.  The two metrics are deliberately
orthogonal: every row below asserts that console output and molecule
counts are bit-identical with the optimizations on and off, so the
dials can never change *what* is computed, only how fast the host
computes it.

Coverage: one boot (``dos_boot``), one app kernel (``compress``), and
one SMC-heavy workload (``quake_demo2``, the self-modifying renderer,
which exercises decode-cache invalidation on every patch).  Each runs
under the translating baseline and under an interpreter-only
configuration; the interpreter-dominated run is where the decode cache
and bus fast paths concentrate, and it must show at least a 2x speedup
over the seed paths.  A per-dial ablation attributes the win.

Results land in three places: the usual ``results.txt`` table, a
machine-readable ``BENCH_wallclock.json`` at the repo root, and the
pytest output.  ``REPRO_WALLCLOCK_BUDGET=<n>`` caps every run at n
guest instructions for CI smoke runs; with a reduced budget the 2x
assertion is relaxed (startup costs dominate tiny runs) but identity
and report shape are still checked.
"""

from __future__ import annotations

import json
import os

from common import BASELINE, emit_telemetry, print_table, run_timed

JSON_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                         "BENCH_wallclock.json")

# (workload, role, interpreter-only?) rows.  The interpreter-only
# quake_demo2 row is the "interpreter-dominated workload" of the
# acceptance criterion: no translations, every instruction through
# decode+dispatch, SMC stores invalidating the decode cache.
ROWS = [
    ("dos_boot", "boot", False),
    ("compress", "app", False),
    ("quake_demo2", "smc", False),
    ("quake_demo2", "interp", True),
]
INTERP_DOMINATED = ("quake_demo2", True)
ABLATION_WORKLOAD = "compress"  # interp-only; cheap enough to rerun
DIALS = ("decode_cache", "fast_bus_routing", "fast_dispatch")

MIN_SPEEDUP = 2.0


def _budget() -> int | None:
    raw = os.environ.get("REPRO_WALLCLOCK_BUDGET", "").strip()
    if not raw:
        return None
    try:
        budget = int(raw)
    except ValueError:
        raise SystemExit(
            f"REPRO_WALLCLOCK_BUDGET must be an instruction count, "
            f"got {raw!r}") from None
    if budget <= 0:
        raise SystemExit(
            f"REPRO_WALLCLOCK_BUDGET must be positive, got {budget}")
    return budget


def _config(interp_only: bool, **dials):
    config = BASELINE.interpreter_only() if interp_only else BASELINE
    if dials:
        from dataclasses import replace
        config = replace(config, **dials)
    return config


def _measure(name: str, interp_only: bool, budget: int | None) -> dict:
    optimized = _config(interp_only)
    seed = optimized.seed_performance()
    seed_secs, seed_result = run_timed(name, seed, budget)
    opt_secs, opt_result = run_timed(name, optimized, budget)
    # The dials must be invisible to everything the paper measures.
    assert opt_result.console_output == seed_result.console_output, (
        f"{name}: console output diverged with optimizations on"
    )
    assert opt_result.total_molecules == seed_result.total_molecules, (
        f"{name}: molecule counts diverged with optimizations on"
    )
    assert opt_result.guest_instructions == seed_result.guest_instructions
    instructions = opt_result.guest_instructions
    return {
        "config": "interp-only" if interp_only else "baseline",
        "guest_instructions": instructions,
        "seed_seconds": round(seed_secs, 4),
        "optimized_seconds": round(opt_secs, 4),
        "seed_ips": round(instructions / seed_secs) if seed_secs else 0,
        "optimized_ips": round(instructions / opt_secs) if opt_secs else 0,
        "speedup": round(seed_secs / opt_secs, 3) if opt_secs else 0.0,
        "molecules_per_instruction": round(opt_result.mpx, 3),
        "identical_output": True,
    }


def _ablate(budget: int | None) -> dict:
    """Per-dial attribution: all-on vs exactly one dial off."""
    all_on_secs, all_on = run_timed(
        ABLATION_WORKLOAD, _config(True), budget)
    out = {}
    for dial in DIALS:
        secs, result = run_timed(
            ABLATION_WORKLOAD, _config(True, **{dial: False}), budget)
        assert result.console_output == all_on.console_output, dial
        assert result.total_molecules == all_on.total_molecules, dial
        out[dial] = {
            "seconds_without": round(secs, 4),
            "slowdown_without": round(secs / all_on_secs, 3)
            if all_on_secs else 0.0,
        }
    out["all_on_seconds"] = round(all_on_secs, 4)
    return out


def _collect() -> dict:
    budget = _budget()
    workloads = {}
    for name, role, interp_only in ROWS:
        key = f"{name}:{'interp' if interp_only else 'baseline'}"
        workloads[key] = {"workload": name, "role": role,
                          **_measure(name, interp_only, budget)}
    return {
        "budget": budget,
        "workloads": workloads,
        "ablation": _ablate(budget),
    }


def test_wallclock(benchmark):
    report = benchmark.pedantic(_collect, rounds=1, iterations=1)
    _emit(report)
    _check(report)


def _emit(report: dict) -> None:
    with open(JSON_PATH, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    emit_telemetry("bench-wallclock", report)
    table = []
    for key, row in report["workloads"].items():
        table.append((
            key,
            f"{row['optimized_ips']:>9,} ips  "
            f"(seed {row['seed_ips']:>9,})  "
            f"speedup {row['speedup']:.2f}x  "
            f"mpx {row['molecules_per_instruction']:.2f}",
        ))
    for dial in DIALS:
        entry = report["ablation"][dial]
        table.append((
            f"ablate {dial}",
            f"{entry['slowdown_without']:.2f}x slower without",
        ))
    budget = report["budget"]
    print_table(
        "Wall-clock (host instructions/second, optimizations vs seed)",
        table,
        footer=f"budget={'full' if budget is None else budget}; "
               "output and molecule counts identical in every row",
    )


def _check(report: dict) -> None:
    key = (f"{INTERP_DOMINATED[0]}:"
           f"{'interp' if INTERP_DOMINATED[1] else 'baseline'}")
    dominated = report["workloads"][key]
    for row in report["workloads"].values():
        assert row["identical_output"]
        assert row["optimized_ips"] > 0
    if report["budget"] is not None:
        return  # CI smoke: identity and shape only; timing is noise.
    assert dominated["speedup"] >= MIN_SPEEDUP, (
        f"interpreter-dominated speedup {dominated['speedup']:.2f}x "
        f"< {MIN_SPEEDUP}x"
    )


if __name__ == "__main__":
    report = _collect()
    _emit(report)
    _check(report)
    print("ok")
