"""Figure 3: degradation caused by no alias hardware.

Paper: without the alias hardware the translator may only reorder
memory references it can *prove* disjoint; the resulting degradation
"is almost as severe as not reordering at all" (boots mean 22.76%, apps
mean 23.53% in the figure).

Shape claims verified:

* disabling the alias hardware costs molecules on the sensitive
  workloads and never helps;
* the cost is close to the full no-reordering cost (the paper's
  "almost as severe" statement), because real pointer code rarely lets
  the translator prove disjointness statically.
"""

from __future__ import annotations

from common import (
    FIG_APPS,
    FIG_BOOTS,
    degradation,
    geomean_excess,
    no_alias_config,
    no_reorder_config,
    print_table,
)


def _collect():
    config = no_alias_config()
    boots = {name: degradation(name, config) for name in FIG_BOOTS}
    apps = {name: degradation(name, config) for name in FIG_APPS}
    return boots, apps


def test_figure3_no_alias_hardware(benchmark):
    boots, apps = benchmark.pedantic(_collect, rounds=1, iterations=1)

    rows = [(name, f"{value * 100:6.2f}%")
            for name, value in sorted(boots.items())]
    rows.append(("mean (all boots)",
                 f"{geomean_excess(list(boots.values())) * 100:6.2f}%"))
    rows.append(("", ""))
    rows += [(name, f"{value * 100:6.2f}%")
             for name, value in sorted(apps.items())]
    rows.append(("mean (all apps)",
                 f"{geomean_excess(list(apps.values())) * 100:6.2f}%"))
    print_table("Figure 3: degradation with no alias hardware", rows,
                footer="paper: boots mean 22.76%, apps mean 23.53%; "
                       "'almost as severe as not reordering at all'")

    app_mean = geomean_excess(list(apps.values()))
    assert app_mean > 0.04, f"app mean too small: {app_mean:.3f}"
    for name, value in {**boots, **apps}.items():
        assert value > -0.01, f"{name}: alias hardware off ran faster?"


def test_figure3_almost_as_severe_as_no_reordering(benchmark):
    """The headline comparison: losing the alias hardware costs nearly
    as much as losing reordering entirely."""
    def _run():
        alias_cfg = no_alias_config()
        reorder_cfg = no_reorder_config()
        sensitive = ["tomcatv", "eqntott", "wordperfect", "compress",
                     "mdljsp2", "alvinn"]
        alias_mean = geomean_excess([degradation(n, alias_cfg)
                                     for n in sensitive])
        reorder_mean = geomean_excess([degradation(n, reorder_cfg)
                                       for n in sensitive])
        print_table(
            "Figure 3 vs Figure 2 on reorder-sensitive apps",
            [("no alias hardware", f"{alias_mean * 100:6.2f}%"),
             ("no reordering at all", f"{reorder_mean * 100:6.2f}%")],
        )
        assert alias_mean > 0.6 * reorder_mean, (
            f"alias-off ({alias_mean:.3f}) should be almost as severe as "
            f"no-reordering ({reorder_mean:.3f})"
        )

    benchmark.pedantic(_run, rounds=1, iterations=1)


def test_figure3_provably_disjoint_code_unaffected(benchmark):
    """A kernel whose accesses are provably disjoint (same base
    register, distinct displacements) keeps its schedule without the
    alias hardware — the hardware only matters for unprovable cases."""
    def _run():
        value = degradation("crafty", no_alias_config())
        assert abs(value) < 0.05

    benchmark.pedantic(_run, rounds=1, iterations=1)
