"""Benchmark-session setup: start a fresh results.txt per run."""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

import common  # noqa: E402


def pytest_sessionstart(session):
    common.reset_results()
