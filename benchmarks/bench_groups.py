"""§3.6.5: translation groups on the BLT-driver workload.

Paper: the Windows/9X device-independent BLT driver rewrites one routine
among up to 33 versions; translation groups keep the retired versions
and reactivate them when their bytes reappear, "so it is desirable to
have the old translation available when an old version reappears".
"""

from __future__ import annotations

from dataclasses import replace

from common import BASELINE, print_table, run_cached


def _collect():
    with_groups = run_cached("blt_driver", BASELINE)
    without_groups = run_cached(
        "blt_driver", replace(BASELINE, translation_groups=False)
    )
    assert with_groups.console_output == without_groups.console_output
    return with_groups, without_groups


def test_translation_groups_reactivate_versions(benchmark):
    with_groups, without_groups = benchmark.pedantic(_collect, rounds=1,
                                                     iterations=1)
    groups = with_groups.system.groups
    stats_with = with_groups.system.stats
    stats_without = without_groups.system.stats
    print_table(
        "BLT driver: translation groups (§3.6.5)",
        [("versions retired", str(groups.retired)),
         ("reactivations", str(groups.reactivations)),
         ("translations (groups on)", str(stats_with.translations_made)),
         ("translations (groups off)",
          str(stats_without.translations_made)),
         ("molecule-equivalents (on)", str(with_groups.total_molecules)),
         ("molecule-equivalents (off)",
          str(without_groups.total_molecules))],
        footer="paper: up to 33 versions observed in the Win9x BLT driver",
    )
    assert groups.reactivations >= 4, "groups barely reactivated"
    assert stats_with.translations_made < stats_without.translations_made
    assert with_groups.total_molecules < without_groups.total_molecules


def test_groups_work_across_version_counts(benchmark):
    """Groups reactivate versions whatever the rotation size."""
    def _run():
        from repro.workloads.games import blt_driver
        from repro.workloads.base import run_workload

        few = run_workload(blt_driver(scale=1, versions=3), BASELINE)
        many = run_workload(blt_driver(scale=1, versions=8), BASELINE)
        assert few.system.groups.reactivations >= 1
        assert many.system.groups.reactivations >= 1

    benchmark.pedantic(_run, rounds=1, iterations=1)
