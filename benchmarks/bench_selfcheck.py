"""§3.6.3: the cost of self-checking translations.

Paper: "we ran simulations of our benchmark suite normally, and with all
translations forced to be self-checking.  Self-checking adds a mean of
83% to the code size (ranging from 58% to 100%), and a mean of 51% to
the molecules executed (ranging from 11% to 124%)."

Shape claims: forcing self-checking inflates both emitted code size and
executed molecules by a material fraction, with the per-workload spread
the paper describes.
"""

from __future__ import annotations

from dataclasses import replace

from common import BASELINE, geomean_excess, print_table, run_cached

WORKLOADS = [
    "eqntott", "compress", "tomcatv", "ora", "alvinn", "gcc",
    "cpumark", "crafty", "dos_boot", "os2_boot",
]


def _code_size(result) -> int:
    translator = result.system.translator
    return max(1, translator.stats.molecules_emitted)


def _collect():
    forced = replace(BASELINE, force_self_check=True)
    rows = {}
    for name in WORKLOADS:
        base = run_cached(name, BASELINE)
        checked = run_cached(name, forced)
        assert base.console_output == checked.console_output, name
        size_overhead = (
            _code_size(checked) / _code_size(base) - 1.0
        )
        exec_overhead = checked.degradation_vs(base)
        rows[name] = (size_overhead, exec_overhead)
    return rows


def test_selfcheck_overhead(benchmark):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)
    table = [
        (name, f"code size +{size * 100:6.1f}%   molecules "
               f"+{molecules * 100:6.1f}%")
        for name, (size, molecules) in rows.items()
    ]
    size_mean = geomean_excess([size for size, _m in rows.values()])
    exec_mean = geomean_excess([m for _s, m in rows.values()])
    table.append(("mean",
                  f"code size +{size_mean * 100:6.1f}%   molecules "
                  f"+{exec_mean * 100:6.1f}%"))
    print_table("Self-checking translations (§3.6.3, all forced)", table,
                footer="paper: +83% code size (58..100%), "
                       "+51% molecules (11..124%)")

    # Code size inflates materially on every workload.
    for name, (size, _m) in rows.items():
        assert size > 0.25, f"{name}: code-size overhead only {size:.2f}"
    assert 0.4 < size_mean < 1.6, f"size mean out of band: {size_mean:.2f}"
    # Executed molecules inflate materially in the mean, with spread.
    assert exec_mean > 0.10, f"molecule mean too small: {exec_mean:.2f}"
    execs = [m for _s, m in rows.values()]
    assert max(execs) > 2 * max(0.01, min(execs)), "no per-workload spread"
