"""§3.6.2: self-revalidating translations on the Quake workload.

Paper: "the Quake Demo2 benchmark achieves a 28% higher frame rate with
self-revalidation than without it."

Frame rate here is frames retired per million molecule-equivalents (the
simulator has no wall clock).  Without self-revalidation, the game-logic
translations whose data shares granules with their code are invalidated
on every spurious protection fault and must be retranslated, which is
what the prologue mechanism avoids.
"""

from __future__ import annotations

from dataclasses import replace

from common import BASELINE, print_table, run_cached


def _frame_rate(result) -> float:
    return result.frames / (result.total_molecules / 1e6)


def _collect():
    with_reval = run_cached("quake_demo2", BASELINE)
    without_reval = run_cached(
        "quake_demo2", replace(BASELINE, self_revalidation=False)
    )
    assert with_reval.console_output == without_reval.console_output
    return with_reval, without_reval


def test_quake_self_revalidation_frame_rate(benchmark):
    with_reval, without_reval = benchmark.pedantic(_collect, rounds=1,
                                                   iterations=1)
    rate_with = _frame_rate(with_reval)
    rate_without = _frame_rate(without_reval)
    improvement = rate_with / rate_without - 1.0
    print_table(
        "Quake Demo2: self-revalidation (§3.6.2)",
        [("frames", str(with_reval.frames)),
         ("frame rate with revalidation", f"{rate_with:8.2f} f/Mmol"),
         ("frame rate without", f"{rate_without:8.2f} f/Mmol"),
         ("improvement", f"{improvement * 100:6.1f}%")],
        footer="paper: 28% higher frame rate with self-revalidation",
    )
    assert with_reval.frames == without_reval.frames
    assert improvement > 0.05, (
        f"revalidation should raise the frame rate: {improvement:.3f}"
    )


def test_quake_revalidation_mechanism_engaged(benchmark):
    def _run():
        with_reval, without_reval = _collect()
        stats = with_reval.system.stats
        assert stats.revalidations_armed >= 1
        assert stats.revalidations_passed >= 1
        assert without_reval.system.stats.revalidations_armed == 0
        # Without the prologue, CMS falls back to invalidation churn.
        assert (without_reval.system.stats.smc_invalidations
                > stats.smc_invalidations)

    benchmark.pedantic(_run, rounds=1, iterations=1)
