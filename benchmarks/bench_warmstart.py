"""Warm start from a persistent translation-cache snapshot (PR 5).

The paper's CMS rebuilds its entire translation cache from nothing on
every boot; the reproduction adds a §3.6.2-style persistence layer
(``repro.cache.persist``) that snapshots the cache at shutdown and
revalidates every translation against guest RAM at the next startup.
This benchmark measures what that buys: a *warm* run should retire the
same guest instructions with (almost) no translator invocations and a
fraction of the interpreted instructions, while producing bit-identical
console output.

Protocol, per workload:

1. **cold** — timed run with no snapshot on disk, saving one at
   shutdown.
2. **prime** — one untimed run that loads the snapshot and re-saves
   it.  The first warm run still translates a few regions: persisted
   execution-profile counters push previously sub-threshold regions
   over the translation threshold.  Re-saving captures those, so the
   snapshot *converges*.
3. **warm** — timed run that loads the converged snapshot (and does
   not save).  This is the steady-state boot the persistence layer
   exists for; the acceptance gate requires it to translate at least
   80% fewer regions than the cold run.

Results land in ``results.txt``, a machine-readable
``BENCH_warmstart.json`` at the repo root, and the pytest output.
``REPRO_WALLCLOCK_BUDGET=<n>`` caps every run at n guest instructions
for CI smoke runs; counter metrics stay deterministic under a fixed
budget, timing metrics are advisory (see ``benchmarks/compare.py``).
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import replace

from common import BASELINE, emit_telemetry, print_table, run_timed

JSON_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                         "BENCH_warmstart.json")

# Two app kernels whose snapshots converge to zero warm translations
# (the acceptance criterion asks for >= 80% fewer on >= 2 workloads).
WORKLOADS = ("compress", "eqntott")

# warm translations must be <= this fraction of cold translations.
MAX_WARM_FRACTION = 0.2


def _budget() -> int | None:
    raw = os.environ.get("REPRO_WALLCLOCK_BUDGET", "").strip()
    if not raw:
        return None
    try:
        budget = int(raw)
    except ValueError:
        raise SystemExit(
            f"REPRO_WALLCLOCK_BUDGET must be an instruction count, "
            f"got {raw!r}") from None
    if budget <= 0:
        raise SystemExit(
            f"REPRO_WALLCLOCK_BUDGET must be positive, got {budget}")
    return budget


def _measure(name: str, budget: int | None) -> dict:
    handle, path = tempfile.mkstemp(suffix=".cms-snapshot.json")
    os.close(handle)
    os.unlink(path)  # let the cold run's save create it
    saving = replace(BASELINE, snapshot_path=path, snapshot_save=True)
    loading = replace(BASELINE, snapshot_path=path)
    try:
        cold_secs, cold = run_timed(name, saving, budget)
        run_timed(name, saving, budget)  # prime: converge the snapshot
        warm_secs, warm = run_timed(name, loading, budget)
    finally:
        if os.path.exists(path):
            os.unlink(path)
    # Warm start must be invisible to everything the guest observes.
    assert warm.console_output == cold.console_output, (
        f"{name}: console output diverged between cold and warm runs"
    )
    assert warm.halted == cold.halted
    if budget is None:
        # Full runs halt naturally, so the retired-instruction count is
        # architecturally determined.  Budgeted runs stop at the cap,
        # and translated execution retires whole regions past it — the
        # cold and warm cut-off points legitimately differ by a few
        # instructions.
        assert warm.guest_instructions == cold.guest_instructions, (
            f"{name}: guest instruction counts diverged"
        )
    cold_stats, warm_stats = cold.system.stats, warm.system.stats
    return {
        "guest_instructions": warm.guest_instructions,
        "translations_cold": cold_stats.translations_made,
        "translations_warm": warm_stats.translations_made,
        "interp_instructions_cold": cold_stats.interp_instructions,
        "interp_instructions_warm": warm_stats.interp_instructions,
        "snapshot_loaded": warm_stats.snapshot_translations_loaded,
        "snapshot_dropped": warm_stats.snapshot_translations_dropped,
        "snapshot_group_versions": warm_stats.snapshot_group_versions,
        "cold_seconds": round(cold_secs, 4),
        "warm_seconds": round(warm_secs, 4),
        "warm_speedup": round(cold_secs / warm_secs, 3)
        if warm_secs else 0.0,
        "identical_output": True,
    }


def _collect() -> dict:
    budget = _budget()
    workloads = {name: _measure(name, budget) for name in WORKLOADS}
    return {"budget": budget, "workloads": workloads}


def test_warmstart(benchmark):
    report = benchmark.pedantic(_collect, rounds=1, iterations=1)
    _emit(report)
    _check(report)


def _emit(report: dict) -> None:
    with open(JSON_PATH, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    emit_telemetry("bench-warmstart", report)
    table = []
    for name, row in report["workloads"].items():
        table.append((
            name,
            f"translations {row['translations_cold']:>3} -> "
            f"{row['translations_warm']:>3}  "
            f"interp {row['interp_instructions_cold']:>6,} -> "
            f"{row['interp_instructions_warm']:>6,}  "
            f"loaded {row['snapshot_loaded']}  "
            f"dropped {row['snapshot_dropped']}  "
            f"speedup {row['warm_speedup']:.2f}x",
        ))
    budget = report["budget"]
    print_table(
        "Warm start (converged snapshot vs cold boot)",
        table,
        footer=f"budget={'full' if budget is None else budget}; "
               "output identical cold vs warm in every row",
    )


def _check(report: dict) -> None:
    for name, row in report["workloads"].items():
        assert row["identical_output"]
        assert row["snapshot_loaded"] > 0, (
            f"{name}: warm run loaded nothing from the snapshot"
        )
        cold = row["translations_cold"]
        warm = row["translations_warm"]
        assert cold > 0, f"{name}: cold run never translated"
        # The acceptance gate: >= 80% fewer translated regions warm.
        assert warm <= MAX_WARM_FRACTION * cold, (
            f"{name}: warm run translated {warm} regions vs {cold} "
            f"cold ({warm / cold:.0%} > {MAX_WARM_FRACTION:.0%})"
        )


if __name__ == "__main__":
    report = _collect()
    _emit(report)
    _check(report)
    print("ok")
