"""Ablation: region size and commit interval.

Design-choice sweeps for two dials the paper motivates:

* **Region size** — §2: regions "may be fairly large ... and include up
  to 200 x86 instructions.  This provides an extended scope for
  optimization."  Tiny regions lose scheduling scope and pay more
  dispatch/chaining overhead; the sweep must show large regions winning
  on straight-line-hot code.
* **Commit interval** — commits bound rollback loss and store-buffer
  occupancy but are scheduling barriers; committing after every couple
  of instructions should visibly cost molecules.
"""

from __future__ import annotations

from dataclasses import replace

from common import BASELINE, print_table, run_cached
from repro.workloads import get_workload
from repro.workloads.base import run_workload

SWEEP_WORKLOAD = "tomcatv"


def _run_with(max_instructions=None, commit_interval=None):
    config = BASELINE
    if max_instructions is not None:
        config = replace(config, max_region_instructions=max_instructions)
    if commit_interval is not None:
        config = replace(config, commit_interval=commit_interval)
    return run_workload(get_workload(SWEEP_WORKLOAD), config)


def test_region_size_sweep(benchmark):
    def _collect():
        results = {}
        for size in (8, 24, 64, 200):
            results[size] = _run_with(max_instructions=size)
        baseline_output = None
        for result in results.values():
            if baseline_output is None:
                baseline_output = result.console_output
            assert result.console_output == baseline_output
        return results

    results = benchmark.pedantic(_collect, rounds=1, iterations=1)
    rows = [(f"max {size:3d} instructions",
             f"{result.total_molecules:>10} molecules  "
             f"(mpx {result.mpx:5.2f})")
            for size, result in results.items()]
    print_table("Ablation: translation region size (tomcatv)", rows,
                footer="paper §2: large regions give extended "
                       "optimization scope")
    # Large regions must beat tiny ones on this loop-dominated kernel.
    assert results[200].total_molecules < results[8].total_molecules
    assert results[64].total_molecules <= results[8].total_molecules


def test_commit_interval_sweep(benchmark):
    def _collect():
        results = {}
        for interval in (2, 6, 24, 48):
            results[interval] = _run_with(commit_interval=interval)
        baseline_output = None
        for result in results.values():
            if baseline_output is None:
                baseline_output = result.console_output
            assert result.console_output == baseline_output
        return results

    results = benchmark.pedantic(_collect, rounds=1, iterations=1)
    rows = [(f"commit every {interval:2d} instrs",
             f"{result.total_molecules:>10} molecules  "
             f"(mpx {result.mpx:5.2f})")
            for interval, result in results.items()]
    print_table("Ablation: commit interval (tomcatv)", rows,
                footer="commits are scheduling barriers; committing "
                       "constantly must cost molecules")
    assert results[24].total_molecules < results[2].total_molecules


def test_store_buffer_capacity_guard(benchmark):
    """A tiny gated store buffer forces overflow faults, and adaptive
    retranslation responds by committing more often — correctness is
    preserved throughout."""
    def _run():
        # wordperfect's unrolled shift issues four stores per commit
        # window: a 3-entry buffer overflows on the fourth store.
        tiny = replace(BASELINE, store_buffer_capacity=3)
        constrained = run_workload(get_workload("wordperfect"), tiny)
        normal = run_cached("wordperfect", BASELINE)
        assert constrained.console_output == normal.console_output
        stats = constrained.system.stats
        overflowed = stats.faults.get("STOREBUF_OVERFLOW", 0)
        print_table(
            "Ablation: 3-entry gated store buffer (wordperfect)",
            [("overflow faults", str(overflowed)),
             ("retranslations", str(stats.retranslations)),
             ("molecules (3-entry)", str(constrained.total_molecules)),
             ("molecules (64-entry)", str(normal.total_molecules))],
        )
        assert overflowed >= 1, "the tiny buffer never overflowed"
        assert stats.retranslations >= 1, (
            "adaptive retranslation should shorten commit windows"
        )

    benchmark.pedantic(_run, rounds=1, iterations=1)
