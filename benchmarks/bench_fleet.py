"""Fleet serving: shared translations vs per-tenant cold starts.

The fleet supervisor (``repro.fleet``) runs N isolated CMS tenants
under cooperative slices with a shared content-addressed translation
service.  This benchmark measures the headline the sharing layer buys:
once one tenant has paid the translation cost for a code mix, the
whole fleet serves that mix at warm speed.

Protocol (mirrors ``bench_warmstart``'s cold/prime/warm convention):

1. **solo cold** — one tenant runs the mix with an empty shared store;
   timed.  This is the per-tenant cost without the fleet layer.
2. **seed** — one untimed run publishes its translations into a fresh
   ``SharedTranslationService`` (the "first tenant of the day").
3. **warm fleet** — ``TENANTS`` tenants run the same mix against the
   seeded store; every tenant imports (and §3.6.2-revalidates) the
   published translations at startup instead of retranslating; timed.

Both timed sections keep the fastest of ``REPEATS`` runs, so a loaded
host (e.g. the full benchmark suite) doesn't flake the timing gate.

The workload is a *flat-profile* mix: many distinct medium-heat
procedures, each crossing the translation threshold but none dominating
— the shape where translation overhead is the largest fraction of run
time (§2's "overhead must be amortized" premise) and sharing therefore
pays most.  Peaked mixes (one hot loop) amortize translation in any
single tenant and gain less; ``EXPERIMENTS.md`` discusses the spread.

Acceptance gate (full runs only): aggregate fleet IPS must be at least
``REQUIRED_SPEEDUP`` (2.5) times the solo-cold single-tenant IPS.
Counter metrics (imports, share stats, instruction counts) are
deterministic under a fixed ``REPRO_WALLCLOCK_BUDGET`` and gated
exactly by ``benchmarks/compare.py`` in CI; timing metrics carry the
usual markers (``seconds``/``ips``/``speedup``) and stay advisory.
Results land in ``results.txt`` and ``BENCH_fleet.json``.
"""

from __future__ import annotations

import json
import os
import time

from common import emit_telemetry, print_table

from repro.cms.config import CMSConfig
from repro.fleet import (
    FleetConfig,
    FleetSupervisor,
    SharedTranslationService,
    TenantSpec,
)
from repro.host import jit
from repro.workloads.builder import wrap

JSON_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                         "BENCH_fleet.json")

TENANTS = 4
REQUIRED_SPEEDUP = 2.5
#: Timed sections run this many times and keep the fastest wall
#: reading (standard best-of-N noise suppression; a loaded host can
#: only make a run slower, never faster).  Counters are identical
#: across repeats — every repeat gets a fresh store and JIT cache —
#: so the reported counter metrics stay deterministic.
REPEATS = 3

#: Flat-profile mix shape: PROCEDURES distinct regions, each executed
#: CALLS times (over the 20-execution translation threshold, far from
#: hot-loop territory).
PROCEDURES = 48
CALLS = 30

_FLEET = FleetConfig(
    slice_guest_instructions=4_000,
    slice_wall_budget=0.0,  # deterministic counters for the perf gate
    share_refresh_rounds=4,
    snapshot_dir=None,  # sharing is in-memory; no disk in the loop
)


def _flat_profile_source(procedures: int = PROCEDURES,
                         calls: int = CALLS) -> str:
    """Many distinct warm procedures, none hot."""
    lines = [f"    mov edi, {calls}", "fp_outer:"]
    lines += [f"    call fp_proc{i}" for i in range(procedures)]
    lines += ["    dec edi", "    jnz fp_outer", "    jmp fp_done"]
    for i in range(procedures):
        seed = (0x9E3779B1 * (i + 1)) & 0xFFFFFFFF
        lines += [
            f"fp_proc{i}:",
            f"    mov eax, {seed}",
            "    imul eax, 0x9E3B",
            f"    xor eax, {(seed >> 7) & 0xFFFF}",
            "    xor esi, eax",
            f"    add esi, {i + 1}",
            "    shl eax, 1",
            "    xor esi, eax",
            "    ret",
        ]
    lines.append("fp_done:")
    return wrap("\n".join(lines))


def _budget() -> int | None:
    raw = os.environ.get("REPRO_WALLCLOCK_BUDGET", "").strip()
    if not raw:
        return None
    budget = int(raw)
    if budget <= 0:
        raise SystemExit(
            f"REPRO_WALLCLOCK_BUDGET must be positive, got {budget}")
    return budget


def _specs(count: int, max_instructions: int) -> list[TenantSpec]:
    source = _flat_profile_source()
    return [
        TenantSpec(tenant_id=i, source=source, name=f"warm{i}",
                   max_instructions=max_instructions,
                   config=CMSConfig())
        for i in range(count)
    ]


def _run_fleet(count: int, max_instructions: int,
               share: SharedTranslationService | None
               ) -> tuple[float, "FleetSupervisor", object]:
    supervisor = FleetSupervisor(_specs(count, max_instructions),
                                 _FLEET, share=share)
    start = time.perf_counter()
    result = supervisor.run()
    return time.perf_counter() - start, supervisor, result


def _collect() -> dict:
    budget = _budget()
    max_instructions = budget if budget is not None else 50_000_000

    # 1. Solo cold: one tenant, empty store.  Best-of-REPEATS timing;
    # the JIT code cache is cleared per repeat so compile costs (and
    # the hit counters below) are identical every time.
    solo_secs = None
    for _ in range(REPEATS):
        jit._CODE_CACHE.clear()
        secs, solo_sup, solo_res = _run_fleet(
            1, max_instructions, SharedTranslationService())
        solo_secs = secs if solo_secs is None else min(solo_secs, secs)
    solo = solo_sup.tenants[0]

    # 2+3. Seed pass (untimed) publishing the mix's translations, then
    # the timed warm fleet against the seeded store.  Each repeat seeds
    # a fresh store, so share counters don't accumulate across repeats.
    fleet_secs = None
    for _ in range(REPEATS):
        store = SharedTranslationService()
        _run_fleet(1, max_instructions, store)
        seeded = len(store)
        jit._CODE_CACHE.clear()  # warm tenants share compiles among themselves
        secs, fleet_sup, fleet_res = _run_fleet(
            TENANTS, max_instructions, store)
        fleet_secs = secs if fleet_secs is None else min(fleet_secs, secs)

    solo_instructions = solo_res.total_guest_instructions
    fleet_instructions = fleet_res.total_guest_instructions
    solo_ips = solo_instructions / solo_secs if solo_secs else 0.0
    aggregate_ips = fleet_instructions / fleet_secs if fleet_secs else 0.0
    tenants = {}
    for tenant in fleet_sup.tenants:
        stats = (tenant.result.stats if tenant.result is not None
                 else tenant.system.stats)
        tenants[tenant.spec.label] = {
            "state": tenant.state.value,
            "imported_translations": tenant.imported_translations,
            "translations_made": stats.translations_made,
            "jit_code_cache_hits": stats.jit_code_cache_hits,
            "console_matches_solo": (
                tenant.system.machine.console.output
                == solo.system.machine.console.output),
        }
    return {
        "budget": budget,
        "tenants": TENANTS,
        "mix": {"procedures": PROCEDURES, "calls": CALLS},
        "seeded_entries": seeded,
        "solo": {
            "guest_instructions": solo_instructions,
            "translations_made": solo.result.stats.translations_made,
            "solo_seconds": round(solo_secs, 4),
            "solo_ips": round(solo_ips, 1),
        },
        "fleet": {
            "guest_instructions": fleet_instructions,
            "rounds": fleet_res.rounds,
            "healthy": fleet_res.health.healthy,
            "share": fleet_sup.share.stats.as_dict(),
            "fleet_seconds": round(fleet_secs, 4),
            "aggregate_ips": round(aggregate_ips, 1),
            "slice_p50_seconds": round(
                fleet_res.latency_us.quantile(0.5) / 1e6, 6),
            "slice_p99_seconds": round(
                fleet_res.latency_us.quantile(0.99) / 1e6, 6),
            "fleet_speedup": round(aggregate_ips / solo_ips, 3)
            if solo_ips else 0.0,
        },
        "per_tenant": tenants,
    }


def _emit(report: dict) -> None:
    with open(JSON_PATH, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    emit_telemetry("bench-fleet", report)
    solo, fleet = report["solo"], report["fleet"]
    rows = [
        ("solo cold",
         f"{solo['guest_instructions']:>9,} instr  "
         f"{solo['translations_made']:>3} translations  "
         f"{solo['solo_seconds']:.3f}s  {solo['solo_ips']:>10,.0f} IPS"),
        (f"warm fleet x{report['tenants']}",
         f"{fleet['guest_instructions']:>9,} instr  "
         f"{fleet['share']['imported']:>3} imports      "
         f"{fleet['fleet_seconds']:.3f}s  "
         f"{fleet['aggregate_ips']:>10,.0f} IPS"),
        ("aggregate speedup",
         f"{fleet['fleet_speedup']:.2f}x single-tenant throughput "
         f"(gate: >= {REQUIRED_SPEEDUP}x)"),
        ("slice latency",
         f"p50 {fleet['slice_p50_seconds'] * 1e3:.2f} ms, "
         f"p99 {fleet['slice_p99_seconds'] * 1e3:.2f} ms"),
        ("shared cache",
         f"{report['seeded_entries']} seeded, hit rate "
         f"{fleet['share']['hit_rate']:.2f}, "
         f"{fleet['share']['rejected_checksum']} integrity + "
         f"{fleet['share']['rejected_revalidation']} revalidation "
         f"rejections"),
    ]
    budget = report["budget"]
    print_table(
        "Fleet serving (shared translations vs per-tenant cold start)",
        rows,
        footer=f"budget={'full' if budget is None else budget}; "
               f"{report['mix']['procedures']}-procedure flat-profile "
               f"mix; every warm tenant's console output identical to "
               f"the solo run",
    )


def _check(report: dict) -> None:
    assert report["fleet"]["healthy"], "fleet run ended unhealthy"
    assert report["seeded_entries"] > 0, "seed pass published nothing"
    for label, row in report["per_tenant"].items():
        assert row["state"] == "done", f"{label}: ended {row['state']}"
        assert row["imported_translations"] > 0, (
            f"{label}: warm tenant imported nothing from the shared "
            f"store")
        assert row["console_matches_solo"], (
            f"{label}: console output diverged from the solo run")
    if report["budget"] is None:
        # Real-timing gate, full runs only: budgeted CI smoke runs are
        # dominated by startup cost and gate on counters instead.
        speedup = report["fleet"]["fleet_speedup"]
        assert speedup >= REQUIRED_SPEEDUP, (
            f"aggregate fleet throughput only {speedup:.2f}x the "
            f"single-tenant baseline (need >= {REQUIRED_SPEEDUP}x)")


def test_fleet(benchmark):
    report = benchmark.pedantic(_collect, rounds=1, iterations=1)
    _emit(report)
    _check(report)


if __name__ == "__main__":
    report = _collect()
    _emit(report)
    _check(report)
    print("ok")
