"""Shared machinery for the experiment benchmarks.

Every benchmark reproduces one table or figure from the paper by
running workloads under contrasting CMS configurations and comparing
molecule counts (the paper's metric).  Absolute numbers differ from a
real TM5800; the assertions check the *shape*: which configuration
wins, roughly by how much, and how workloads order.

Results are printed as paper-style tables and also appended to
``benchmarks/results.txt`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from dataclasses import replace

from repro.cms.config import CMSConfig
from repro.workloads import ALL_WORKLOADS, run_workload
from repro.workloads.base import WorkloadResult

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results.txt")

BASELINE = CMSConfig(translation_threshold=10)

# Representative benchmark sets (subsets keep the harness fast; set
# REPRO_FULL=1 to run everything the registry has).
FIG_BOOTS = [
    "dos_boot", "linux_boot", "os2_boot", "win95_boot", "win98_boot",
    "winme_boot", "winnt_boot", "winxp_boot",
]
FIG_APPS = [
    "eqntott", "compress", "sc", "gcc", "tomcatv", "ora", "alvinn",
    "mdljsp2", "multimedia", "cpumark", "quattro_pro", "wordperfect",
]

_cache: dict[tuple, WorkloadResult] = {}


def run_cached(name: str, config: CMSConfig) -> WorkloadResult:
    """Run a workload once per (workload, config) and memoize."""
    key = (name, config)
    if key not in _cache:
        _cache[key] = run_workload(ALL_WORKLOADS[name], config)
    return _cache[key]


def degradation(name: str, variant: CMSConfig,
                baseline: CMSConfig = BASELINE) -> float:
    """Relative molecule-count increase of ``variant`` over baseline."""
    base = run_cached(name, baseline)
    varied = run_cached(name, variant)
    assert varied.console_output == base.console_output, (
        f"{name}: outputs diverged between configurations"
    )
    return varied.degradation_vs(base)


def geomean_excess(values: list[float]) -> float:
    """Arithmetic mean of degradations (as the paper's figures report)."""
    return sum(values) / len(values) if values else 0.0


def print_table(title: str, rows: list[tuple[str, str]],
                footer: str = "") -> None:
    width = max(len(label) for label, _ in rows) + 2
    lines = [f"\n== {title} " + "=" * max(0, 60 - len(title)), ""]
    for label, value in rows:
        lines.append(f"  {label:<{width}} {value}")
    if footer:
        lines.append(f"  {footer}")
    text = "\n".join(lines)
    print(text)
    with open(RESULTS_PATH, "a", encoding="utf-8") as handle:
        handle.write(text + "\n")


def no_reorder_config() -> CMSConfig:
    """Figure 2: suppress all memory reordering."""
    return replace(BASELINE, reorder_memory=False,
                   control_speculation=False)


def no_alias_config() -> CMSConfig:
    """Figure 3: no alias hardware — reorder only when provably safe."""
    return replace(BASELINE, use_alias_hw=False)


def no_finegrain_config() -> CMSConfig:
    """Table 1: page-granularity protection only."""
    return replace(BASELINE, fine_grain_protection=False)
