"""Figure 2: degradation caused by suppressing memory reordering.

Paper: "we ran simulations of our benchmark suite with and without
reordering of memory operations ... Several of the boots degraded by
less than 5%, but the cost was as high as 26% in Windows/ME boot.  The
application degradation was much greater."  (Boot mean 10.09%, app mean
23.53%, individual apps up to ~90%.)

Shape claims verified here:

* every workload runs at least as many molecule-equivalents without
  reordering (suppression never helps);
* the boot mean and the app mean degradations are material (>3% / >8%);
* applications degrade more than boots on average;
* there is a wide spread: some workloads barely care, others lose a
  large fraction.
"""

from __future__ import annotations

from common import (
    FIG_APPS,
    FIG_BOOTS,
    degradation,
    geomean_excess,
    no_reorder_config,
    print_table,
    run_cached,
    BASELINE,
)


def _collect() -> tuple[dict[str, float], dict[str, float]]:
    config = no_reorder_config()
    boots = {name: degradation(name, config) for name in FIG_BOOTS}
    apps = {name: degradation(name, config) for name in FIG_APPS}
    return boots, apps


def test_figure2_reordering_suppression(benchmark):
    boots, apps = benchmark.pedantic(_collect, rounds=1, iterations=1)

    rows = [(name, f"{value * 100:6.2f}%")
            for name, value in sorted(boots.items())]
    rows.append(("mean (all boots)",
                 f"{geomean_excess(list(boots.values())) * 100:6.2f}%"))
    rows.append(("", ""))
    rows += [(name, f"{value * 100:6.2f}%")
             for name, value in sorted(apps.items())]
    rows.append(("mean (all apps)",
                 f"{geomean_excess(list(apps.values())) * 100:6.2f}%"))
    print_table("Figure 2: degradation with memory reordering suppressed",
                rows, footer="paper: boots mean 10.09%, apps mean 23.53%")

    boot_mean = geomean_excess(list(boots.values()))
    app_mean = geomean_excess(list(apps.values()))

    # Suppression never helps (allow sub-1% noise from adaptive paths).
    for name, value in {**boots, **apps}.items():
        assert value > -0.01, f"{name}: reordering off ran faster?"
    # Material cost on both groups.  (Magnitudes are compressed relative
    # to the paper's 10%/23.5% means — see EXPERIMENTS.md — but the
    # direction, the boot/app ratio, and the per-workload ordering hold.)
    assert boot_mean > 0.005, f"boot mean too small: {boot_mean:.3f}"
    assert app_mean > 0.04, f"app mean too small: {app_mean:.3f}"
    # Applications suffer more than boots (paper: "much greater").
    assert app_mean > boot_mean
    # Wide spread across workloads, as in the figure.
    spread = max(apps.values()) - min(apps.values())
    assert spread > 0.08, f"app spread too narrow: {spread:.3f}"
    # The paper's most/least-sensitive boots order the same way here:
    # DOS and Windows/ME lead; Linux, 95 and NT trail.
    leaders = (boots["dos_boot"] + boots["winme_boot"]) / 2
    trailers = (boots["linux_boot"] + boots["win95_boot"]
                + boots["winnt_boot"]) / 3
    assert leaders > trailers


def test_figure2_reordering_wins_per_workload(benchmark):
    """The most memory-parallel kernels lose the most (ordering check)."""
    def _run():
        config = no_reorder_config()
        sensitive = degradation("tomcatv", config)
        insensitive = degradation("ora", config)
        assert sensitive > insensitive, (
            f"tomcatv ({sensitive:.3f}) should degrade more than "
            f"ora ({insensitive:.3f})"
        )

    benchmark.pedantic(_run, rounds=1, iterations=1)


def test_figure2_outputs_identical(benchmark):
    """Suppression is a pure performance knob: results must not change."""
    def _run():
        config = no_reorder_config()
        for name in ("winme_boot", "tomcatv", "compress"):
            base = run_cached(name, BASELINE)
            varied = run_cached(name, config)
            assert base.console_output == varied.console_output

    benchmark.pedantic(_run, rounds=1, iterations=1)
