"""Adversarial scenario matrix — the CI ``scenarios`` lane's driver.

Runs every scenario class differentially (interpreter oracle vs full
CMS, see ``repro.scenarios.runner``) at a fixed instruction budget and
writes the per-scenario pass/perf records to ``BENCH_scenarios.json``.
Any architectural divergence exits nonzero, failing the lane before
the baseline compare even runs.

Under a fixed budget every ``counters`` and ``dispatch`` value in the
report is a pure function of the guest programs and the CMS policies,
so ``benchmarks/compare.py`` gates them *exactly* against the
committed ``benchmarks/baselines/BENCH_scenarios.json``; the
``timing`` section (wall seconds, speedup) is host noise and rides
under ``--timing-advisory``.

``REPRO_SCENARIO_BUDGET=<n>`` overrides the sizing budget (the
baseline is committed at the default, 120000; compare refuses reports
taken at a different budget).  ``REPRO_SCENARIO_SEED`` likewise.

Stdlib + repo only, so the lane needs no package install.
"""

from __future__ import annotations

import json
import os
import sys

REPORT_PATH = "BENCH_scenarios.json"
DEFAULT_BUDGET = 120_000
DEFAULT_SEED = 0


def _env_int(name: str, default: int, minimum: int = 1) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise SystemExit(f"{name} must be an integer, got {raw!r}")
    if value < minimum:
        raise SystemExit(f"{name} must be >= {minimum}, got {value}")
    return value


def main() -> int:
    from repro.scenarios.runner import all_passed, run_matrix

    budget = _env_int("REPRO_SCENARIO_BUDGET", DEFAULT_BUDGET)
    seed = _env_int("REPRO_SCENARIO_SEED", DEFAULT_SEED, minimum=0)
    report = run_matrix(budget, seed)

    print(f"scenario matrix @ budget {budget}, seed {seed}")
    print(f"{'scenario':<14} {'verdict':<8} {'instructions':>12} "
          f"{'molecules':>11} {'smc-inv':>8} {'irqs':>6} "
          f"{'p50/p99 instr':>14} {'speedup':>8}")
    for name, record in report["scenarios"].items():
        counters = record["counters"]
        dispatch = record["dispatch"]
        print(f"{name:<14} {'PASS' if record['pass'] else 'FAIL':<8} "
              f"{counters['guest_instructions']:>12} "
              f"{counters['total_molecules']:>11} "
              f"{counters['smc_invalidations']:>8} "
              f"{counters['interrupts_delivered']:>6} "
              f"{dispatch['p50_instructions']:>6.1f}/"
              f"{dispatch['p99_instructions']:<7.1f} "
              f"{record['timing']['speedup']:>7.2f}x")
        for diff in record["diffs"]:
            print(f"    DIFF {diff}")

    with open(REPORT_PATH, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"report written to {REPORT_PATH}")

    if not all_passed(report):
        print("SCENARIO DIVERGENCE", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.path.insert(0, os.path.join(os.path.dirname(__file__) or ".",
                                    os.pardir, "src"))
    sys.exit(main())
