"""Ablation: adaptive retranslation (§3).

Paper: "most varieties of speculation occasionally fail repeatedly in
heavily executed translations, in which case the fault-and-interpret
approach incurs unacceptable overhead.  To cope gracefully with this
eventuality, CMS monitors recurring failures and generates a more
conservative translation."

The ``alias_stress`` kernel aliases a store and a load through different
registers at the *same* address, so speculation faults on every
execution until the controller pins the pair to program order.  With
adaptive retranslation disabled, the faults (rollback + conservative
re-execution in the interpreter) recur forever.
"""

from __future__ import annotations

from dataclasses import replace

from common import BASELINE, print_table, run_cached


def _collect():
    adaptive = run_cached("alias_stress", BASELINE)
    # The degradation ladder is itself a second adaptation mechanism:
    # a storming region descends to NO_REORDER and the faults stop.
    # Disable containment in the frozen run so this ablation isolates
    # *controller* adaptation, the mechanism the paper describes.
    frozen = run_cached(
        "alias_stress", replace(BASELINE, adaptive_retranslation=False,
                                failure_containment=False)
    )
    assert adaptive.console_output == frozen.console_output
    return adaptive, frozen


def test_adaptive_retranslation_tames_recurring_faults(benchmark):
    adaptive, frozen = benchmark.pedantic(_collect, rounds=1, iterations=1)
    stats_a = adaptive.system.stats
    stats_f = frozen.system.stats
    faults_a = stats_a.faults.get("ALIAS_VIOLATION", 0)
    faults_f = stats_f.faults.get("ALIAS_VIOLATION", 0)
    print_table(
        "Ablation: adaptive retranslation on the aliasing kernel",
        [("alias faults (adaptive)", str(faults_a)),
         ("alias faults (disabled)", str(faults_f)),
         ("retranslations (adaptive)", str(stats_a.retranslations)),
         ("molecule-equivalents (adaptive)", str(adaptive.total_molecules)),
         ("molecule-equivalents (disabled)", str(frozen.total_molecules))],
        footer="paper: recurring faults must trigger conservative "
               "retranslation",
    )
    assert stats_a.retranslations >= 1, "controller never escalated"
    assert faults_f > 5 * max(1, faults_a), (
        "without adaptation the faults should recur indefinitely"
    )
    assert adaptive.total_molecules < frozen.total_molecules


def test_adaptive_policies_accumulate(benchmark):
    """§3: policies are merged, not swapped — no bouncing between
    incomparable translations."""
    def _run():
        adaptive, _frozen = _collect()
        controller = adaptive.system.controller
        for entry in controller._policies:
            accumulated = controller.policy_for(entry)
            # Re-merging must be a fixed point (monotone accumulation).
            assert accumulated.merge(accumulated) == accumulated

    benchmark.pedantic(_run, rounds=1, iterations=1)
