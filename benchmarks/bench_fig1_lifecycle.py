"""Figure 1: the CMS execution lifecycle.

Qualitative claims from §2: code starts in the interpreter; past the
execution threshold it is translated; "over time, frequently executed
regions of code begin to execute entirely within the translation cache,
without overhead from interpretation, translation, or even
branch-target lookup" (chaining).
"""

from __future__ import annotations

from common import BASELINE, print_table, run_cached

HOT_WORKLOADS = ["tomcatv", "compress", "alvinn", "crafty"]


def _collect():
    rows = {}
    for name in HOT_WORKLOADS:
        result = run_cached(name, BASELINE)
        stats = result.system.stats
        total = max(1, result.guest_instructions)
        interp_fraction = (stats.interp_instructions
                           + stats.recovery_interp_instructions) / total
        chained = stats.chains_followed
        dispatches = max(1, stats.dispatches)
        rows[name] = (interp_fraction, stats.translations_made,
                      chained, dispatches)
    return rows


def test_figure1_lifecycle(benchmark):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)
    table = [
        (name,
         f"interp {frac * 100:5.2f}%   translations {count:3d}   "
         f"chained entries {chained}/{dispatches + chained}")
        for name, (frac, count, chained, dispatches) in rows.items()
    ]
    print_table("Figure 1: execution lifecycle fractions", table,
                footer="hot code must run almost entirely translated")
    for name, (frac, count, chained, dispatches) in rows.items():
        # Hot workloads execute overwhelmingly inside the tcache.
        assert frac < 0.15, f"{name}: {frac:.2%} interpreted"
        assert count >= 1


def test_figure1_threshold_controls_translation(benchmark):
    """A higher translation threshold keeps more execution interpreted."""
    def _run():
        from dataclasses import replace
        from repro.workloads.base import run_workload
        from repro.workloads import get_workload

        eager = run_workload(get_workload("crafty"),
                             replace(BASELINE, translation_threshold=4))
        lazy = run_workload(get_workload("crafty"),
                            replace(BASELINE, translation_threshold=200))
        assert (lazy.system.stats.interp_instructions
                > eager.system.stats.interp_instructions)

    benchmark.pedantic(_run, rounds=1, iterations=1)


def test_figure1_interpreter_only_is_much_slower(benchmark):
    """The whole point of translating: interpretation costs far more
    molecule-equivalents per instruction."""
    def _run():
        from repro.workloads.base import run_workload
        from repro.workloads import get_workload

        translated = run_cached("tomcatv", BASELINE)
        interp_only = run_workload(get_workload("tomcatv"),
                                   BASELINE.interpreter_only())
        assert interp_only.console_output == translated.console_output
        speedup = interp_only.total_molecules / translated.total_molecules
        print_table(
            "Interpreter vs translation-cache execution (tomcatv)",
            [("interpreter-only molecules", str(interp_only.total_molecules)),
             ("full CMS molecules", str(translated.total_molecules)),
             ("speedup from translation", f"{speedup:5.1f}x")],
        )
        assert speedup > 3.0

    benchmark.pedantic(_run, rounds=1, iterations=1)
