"""Diff two BENCH_*.json reports against tolerance bands.

The CI ``perf-gate`` job runs ``bench_wallclock.py`` under a fixed
instruction budget, then invokes this tool against the committed
baseline in ``benchmarks/baselines/``.  Exit status is the gate: 0
when the current report is within tolerance, 1 on any regression, 2
when the reports are not comparable (different budget or structure).

Metric classification follows the observability layer's split:

* **counter metrics** (guest instruction counts, molecule counts,
  ``identical_output`` flags, ...) are deterministic for a fixed
  budget and must match the baseline exactly (``--counter-tolerance``
  can relax this to a relative band if a future metric needs it);
* **timing metrics** (any leaf whose name contains ``seconds``,
  ``ips``, ``speedup``, or ``slowdown``) are host-dependent and are
  checked against ``--timing-tolerance`` — or only reported, never
  failed, under ``--timing-advisory`` (what CI uses: budgeted smoke
  runs are dominated by startup noise).

Usage::

    python benchmarks/compare.py BASELINE.json CURRENT.json \
        [--timing-advisory | --timing-tolerance 0.5] \
        [--counter-tolerance 0.0]

Stdlib-only on purpose, so the gate runs before any package install.
"""

from __future__ import annotations

import argparse
import json
import sys

TIMING_MARKERS = ("seconds", "ips", "speedup", "slowdown")

OK, REGRESSION, INCOMPARABLE = 0, 1, 2


def is_timing_key(key: str) -> bool:
    return any(marker in key for marker in TIMING_MARKERS)


def flatten(tree: dict, prefix: str = "") -> dict:
    """``{"a": {"b": 1}} -> {"a.b": 1}`` over dicts (lists stay leaves)."""
    flat: dict = {}
    for key, value in tree.items():
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, dict):
            flat.update(flatten(value, path))
        else:
            flat[path] = value
    return flat


def relative_delta(base, current) -> float:
    if base == current:
        return 0.0
    if not isinstance(base, (int, float)) or isinstance(base, bool):
        return float("inf")
    if not isinstance(current, (int, float)) or isinstance(current, bool):
        return float("inf")
    if base == 0:
        return float("inf")
    return abs(current - base) / abs(base)


def compare(
    baseline: dict,
    current: dict,
    counter_tolerance: float = 0.0,
    timing_tolerance: float = 0.5,
    timing_advisory: bool = False,
) -> tuple[int, list[str]]:
    """Return (exit status, human-readable findings)."""
    findings: list[str] = []
    base_flat = flatten(baseline)
    cur_flat = flatten(current)

    if base_flat.get("budget") != cur_flat.get("budget"):
        findings.append(
            "INCOMPARABLE budget: baseline "
            f"{base_flat.get('budget')!r} vs current "
            f"{cur_flat.get('budget')!r} (regenerate the baseline with "
            "the gate's budget env: REPRO_WALLCLOCK_BUDGET or "
            "REPRO_SCENARIO_BUDGET)"
        )
        return INCOMPARABLE, findings

    missing = sorted(set(base_flat) - set(cur_flat))
    extra = sorted(set(cur_flat) - set(base_flat))
    if missing:
        findings.append(f"INCOMPARABLE missing metrics: {', '.join(missing)}")
    if extra:
        # New metrics are fine (the report grew); note them only.
        findings.append(
            f"note: new metrics not in baseline: {', '.join(extra)}"
        )
    if missing:
        return INCOMPARABLE, findings

    status = OK
    for key in sorted(base_flat):
        base_value = base_flat[key]
        cur_value = cur_flat[key]
        if key == "budget":
            continue
        delta = relative_delta(base_value, cur_value)
        if is_timing_key(key):
            if delta <= timing_tolerance:
                continue
            label = (
                f"timing {key}: baseline {base_value!r} vs "
                f"{cur_value!r} (delta {delta:.1%}, band "
                f"{timing_tolerance:.0%})"
            )
            if timing_advisory:
                findings.append(f"advisory {label}")
            else:
                findings.append(f"REGRESSION {label}")
                status = REGRESSION
        else:
            if delta <= counter_tolerance:
                continue
            findings.append(
                f"REGRESSION counter {key}: baseline {base_value!r} vs "
                f"{cur_value!r}"
            )
            status = REGRESSION
    return status, findings


def load(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Compare two BENCH_*.json reports; nonzero exit on "
        "regression"
    )
    parser.add_argument("baseline", help="committed baseline report")
    parser.add_argument("current", help="freshly produced report")
    parser.add_argument(
        "--counter-tolerance",
        type=float,
        default=0.0,
        help="relative band for counter metrics (default: exact)",
    )
    parser.add_argument(
        "--timing-tolerance",
        type=float,
        default=0.5,
        help="relative band for timing metrics (default 0.5)",
    )
    parser.add_argument(
        "--timing-advisory",
        action="store_true",
        help="report timing deviations without failing on them",
    )
    args = parser.parse_args(argv)

    status, findings = compare(
        load(args.baseline),
        load(args.current),
        counter_tolerance=args.counter_tolerance,
        timing_tolerance=args.timing_tolerance,
        timing_advisory=args.timing_advisory,
    )
    for finding in findings:
        print(finding)
    if status == OK:
        print(f"ok: {args.current} within tolerance of {args.baseline}")
    elif status == REGRESSION:
        print("FAIL: perf-gate regression (see findings above)")
    else:
        print("FAIL: reports are not comparable")
    return status


if __name__ == "__main__":
    sys.exit(main())
