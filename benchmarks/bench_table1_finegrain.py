"""Table 1: slowdown without fine-grain protection.

Paper (§3.6.1):

    ==================  ======  ========
    benchmark           faults  slowdown
    ==================  ======  ========
    Win95 boot           52.8x      2.2x
    Win98 boot           59.4x      3.8x
    MultimediaMark       46.8x      1.6x
    WinStone Corel       54.2x      2.1x
    Quake Demo2           7.7x     1.02x
    ==================  ======  ========

"faults" is protection faults without fine-grain support over faults
with it; "slowdown" is molecules per x86 instruction.  Shape claims:
fault counts drop by a large factor with fine-grain protection on the
mixed code/data workloads, and the page-protection-only configuration
is materially slower.
"""

from __future__ import annotations

from common import BASELINE, no_finegrain_config, print_table, run_cached

# Workloads with driver-style mixed code/data pages (Table 1's set).
TABLE1_WORKLOADS = [
    "win95_boot", "win98_boot", "multimedia", "corel", "quake_demo2",
]


def _collect():
    rows = {}
    nofg = no_finegrain_config()
    for name in TABLE1_WORKLOADS:
        with_fg = run_cached(name, BASELINE)
        without_fg = run_cached(name, nofg)
        assert with_fg.console_output == without_fg.console_output, name
        faults_with = max(1, with_fg.system.protection.protection_faults)
        faults_without = without_fg.system.protection.protection_faults
        slowdown = (without_fg.total_molecules
                    / max(1, with_fg.total_molecules))
        rows[name] = (faults_without / faults_with, slowdown,
                      faults_with, faults_without)
    return rows


def test_table1_fine_grain_protection(benchmark):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)
    table = [
        (name,
         f"faults {ratio:7.1f}x   slowdown {slow:5.2f}x   "
         f"({with_f} vs {without_f} faults)")
        for name, (ratio, slow, with_f, without_f) in rows.items()
    ]
    print_table("Table 1: slowdown without fine-grain protection", table,
                footer="paper: faults 7.7x-59.4x, slowdown 1.02x-3.8x")

    boot_rows = {k: v for k, v in rows.items() if k.endswith("_boot")}
    # Driver-heavy boots: large fault-count ratios.
    for name, (ratio, slow, *_rest) in boot_rows.items():
        assert ratio > 5.0, f"{name}: fault ratio only {ratio:.1f}x"
        assert slow > 1.05, f"{name}: no measurable slowdown ({slow:.2f}x)"
    # Every Table-1 workload loses at least some performance.
    for name, (ratio, slow, *_rest) in rows.items():
        assert slow > 0.99, f"{name}: page protection ran faster?"
    # Quake is the least affected, as in the paper's table.
    quake_slow = rows["quake_demo2"][1]
    worst_boot = max(slow for _r, slow, *_x in boot_rows.values())
    assert worst_boot > quake_slow


def test_table1_fine_grain_allows_data_stores(benchmark):
    """The mechanism behind the ratio: with fine-grain protection the
    driver data stores are serviced by the hardware cache instead of
    faulting."""
    def _run():
        result = run_cached("win98_boot", BASELINE)
        protection = result.system.protection
        assert protection.fg_allowed_stores > 100
        assert protection.fg_allowed_stores > protection.code_hit_faults

    benchmark.pedantic(_run, rounds=1, iterations=1)
