#!/usr/bin/env python3
"""Watch adaptive retranslation converge (paper §3 / §3.5).

The guest kernel stores through one pointer and immediately re-reads
through another pointer that aliases it exactly — but via arithmetic
the translator cannot see through.  Speculative reordering therefore
violates its alias protection on every execution.

CMS's response, visible in the escalation log below: pin the faulting
store to program order, retranslate, and keep the rest of the region
fully speculative.  With adaptation disabled, the fault/rollback/
re-interpret cycle recurs for the entire run.

Run:  python examples/adaptive_retranslation.py
"""

from dataclasses import replace

from repro import CMSConfig
from repro.workloads import run_workload
from repro.workloads.apps import alias_stress


def main() -> None:
    workload = alias_stress()
    base = CMSConfig()

    adaptive = run_workload(workload, base)
    frozen = run_workload(workload,
                          replace(base, adaptive_retranslation=False))
    assert adaptive.console_output == frozen.console_output

    stats_a = adaptive.system.stats
    stats_f = frozen.system.stats

    print("the always-aliasing kernel under full CMS:")
    print(f"  alias faults      : {stats_a.faults.get('ALIAS_VIOLATION', 0)}")
    print(f"  rollbacks         : {stats_a.rollbacks}")
    print(f"  retranslations    : {stats_a.retranslations}")
    print(f"  total molecules   : {adaptive.total_molecules}")
    print()
    print("accumulated translation policies (monotone, §3):")
    controller = adaptive.system.controller
    for entry in sorted(controller._policies):
        print(f"  region {entry:#x}: "
              f"{controller.policy_for(entry).describe()}")
    print()
    print("with adaptive retranslation DISABLED:")
    print(f"  alias faults      : {stats_f.faults.get('ALIAS_VIOLATION', 0)}")
    print(f"  rollbacks         : {stats_f.rollbacks}")
    print(f"  total molecules   : {frozen.total_molecules}")
    print()
    ratio = frozen.total_molecules / adaptive.total_molecules
    print(f"adaptive retranslation made this kernel {ratio:.1f}x cheaper —")
    print("the paper's 'unacceptable overhead' of fault-and-interpret,")
    print("tamed by generating a more conservative translation.")


if __name__ == "__main__":
    main()
