#!/usr/bin/env python3
"""Quickstart: assemble a guest program and run it under CMS.

The guest prints through the console port; the run report shows the
Figure-1 lifecycle — interpretation with profiling, translation past the
threshold, then execution out of the translation cache.

Run:  python examples/quickstart.py
"""

from repro import CMSConfig, CodeMorphingSystem, Machine

GUEST_PROGRAM = r"""
start:
    mov esp, 0x8000
    mov ebx, message
print_loop:
    loadb eax, [ebx]
    test eax, eax
    jz compute
    out 0xE9                 ; console data port
    inc ebx
    jmp print_loop

compute:
    ; a hot loop: becomes a translation after the threshold
    mov ecx, 0
    mov esi, 0
hot_loop:
    mov eax, ecx
    imul eax, ecx
    add esi, eax
    inc ecx
    cmp ecx, 10000
    jne hot_loop

    ; print the low hex digits of the sum
    mov ecx, 8
digits:
    rol esi, 4
    mov eax, esi
    and eax, 0xF
    cmp eax, 10
    jl digit
    add eax, 'A' - 10
    jmp emit
digit:
    add eax, '0'
emit:
    out 0xE9
    dec ecx
    jnz digits
    cli
    hlt

message:
    .asciz "hello from the code morphing software: sum(i*i) = 0x"
"""


def main() -> None:
    machine = Machine()
    entry = machine.load_source(GUEST_PROGRAM)
    system = CodeMorphingSystem(machine, CMSConfig())
    result = system.run(entry)

    print("guest console output:")
    print(f"  {result.console_output}")
    print()
    print("run statistics:")
    print(result.stats.summary(system.config.cost))
    print()
    translations = system.tcache.translations()
    print(f"translations in the cache ({len(translations)}):")
    for translation in translations:
        print(f"  {translation.describe()}  entries={translation.entries}")


if __name__ == "__main__":
    main()
