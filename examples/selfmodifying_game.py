#!/usr/bin/env python3
"""The Quake-style self-modifying renderer (paper §3.6).

The game patches its blit kernel's immediate fields every frame (the
Doom/Premiere pattern), keeps entity state on the same pages as code,
and blits to a memory-mapped framebuffer.  CMS adapts: stylized-SMC
translations reload the patched immediates at runtime, self-checking
guards the rest of the bytes, and self-revalidation prologues absorb
the data-beside-code faults.

The example reports the frame rate (frames per million molecules) with
the full machinery, without self-revalidation, and without stylized
SMC — reproducing the §3.6.2 comparison.

Run:  python examples/selfmodifying_game.py
"""

from dataclasses import replace

from repro import CMSConfig
from repro.workloads import run_workload
from repro.workloads.games import quake_demo2


def frame_rate(result) -> float:
    return result.frames / (result.total_molecules / 1e6)


def describe(label: str, result) -> None:
    stats = result.system.stats
    print(f"{label}:")
    print(f"  frame rate        : {frame_rate(result):8.2f} frames/Mmol")
    print(f"  molecules         : {result.total_molecules}")
    print(f"  protection faults : {result.system.protection.protection_faults}")
    print(f"  SMC invalidations : {stats.smc_invalidations}")
    print(f"  revalidations     : {stats.revalidations_armed} armed, "
          f"{stats.revalidations_passed} passed")
    print(f"  translations      : {stats.translations_made}")
    stylized_regions = sum(
        1 for entry in result.system.controller._policies
        if result.system.controller.policy_for(entry).stylized_imm_addrs
    )
    print(f"  stylized regions  : {stylized_regions}")
    print()


def main() -> None:
    workload = quake_demo2()
    base = CMSConfig()

    full = run_workload(workload, base)
    print(f"rendered {full.frames} frames; framebuffer checksum "
          f"{full.system.machine.framebuffer.checksum():#010x}; "
          f"game checksum {full.console_output.strip()}")
    print()
    describe("full CMS (stylized SMC + self-revalidation)", full)

    no_reval = run_workload(workload,
                            replace(base, self_revalidation=False))
    describe("without self-revalidation (§3.6.2 ablation)", no_reval)

    no_stylized = run_workload(workload, replace(base, stylized_smc=False))
    describe("without stylized-SMC immediate reloading (§3.6.4 ablation)",
             no_stylized)

    gain = frame_rate(full) / frame_rate(no_reval) - 1
    print(f"self-revalidation frame-rate gain: {gain:+.1%} "
          f"(paper reports +28%)")
    for other in (no_reval, no_stylized):
        assert other.console_output == full.console_output, \
            "ablations must not change what the game computes"


if __name__ == "__main__":
    main()
