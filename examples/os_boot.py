#!/usr/bin/env python3
"""Boot a synthetic operating system under CMS.

The boot exercises the paper's system-level challenges end to end:
memory-mapped device probing (speculative-MMIO detection), timer
interrupts (rollback to precise boundaries), DMA traffic (translation
invalidation), paging, and driver code with data on its own pages
(fine-grain protection).

Run:  python examples/os_boot.py [boot-name]
"""

import sys

from repro import CMSConfig
from repro.workloads import get_workload, run_workload, workload_names


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "win98_boot"
    try:
        workload = get_workload(name)
    except KeyError:
        boots = [n for n in workload_names() if n.endswith("_boot")]
        print(f"unknown workload {name!r}; available boots: {boots}")
        raise SystemExit(1)

    print(f"booting {name} ...")
    result = run_workload(workload, CMSConfig())
    system = result.system
    machine = system.machine
    stats = system.stats

    print(f"  boot checksum: {result.console_output.strip()}")
    print(f"  guest instructions: {result.guest_instructions}")
    print(f"  molecules/instruction: {result.mpx:.2f}")
    print()
    print("system-level events:")
    print(f"  hardware interrupts delivered : "
          f"{stats.interrupts_delivered}")
    print(f"  timer fired                   : {machine.timer.fired}")
    print(f"  DMA transfers completed       : "
          f"{machine.dma.transfers_completed}")
    print(f"  MMIO device accesses          : {machine.bus.io_reads} reads,"
          f" {machine.bus.io_writes} writes")
    print(f"  MMIO sites learned by profile : "
          f"{len(system.profile.mmio_sites)}")
    print(f"  paging translations           : {machine.mmu.translations}")
    print()
    print("protection (paper §3.6.1):")
    protection = system.protection
    print(f"  protection faults             : "
          f"{protection.protection_faults}")
    print(f"  fine-grain cache fills        : {stats.fg_miss_services}")
    print(f"  data stores allowed by FG     : "
          f"{protection.fg_allowed_stores}")
    print(f"  SMC invalidations             : {stats.smc_invalidations}")
    print()
    print("translation lifecycle (Figure 1):")
    print(f"  translations made             : {stats.translations_made}"
          f" ({stats.retranslations} adaptive)")
    print(f"  dispatches                    : {stats.dispatches}"
          f" (+{stats.chains_followed} chained entries)")
    print(f"  rollbacks                     : {stats.rollbacks}")
    interp_total = (stats.interp_instructions
                    + stats.recovery_interp_instructions)
    fraction = interp_total / max(1, result.guest_instructions)
    print(f"  interpreted fraction          : {fraction:.1%}")


if __name__ == "__main__":
    main()
